"""Tests for the robustness score (Sec. 4 formulas, Sec. 6.3 constants)."""

import pytest
from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.scoring import Scorer, ScoringParams, score_query
from repro.scoring.score import score_predicate, score_step
from repro.xpath import parse_query
from repro.xpath.ast import Axis


PARAMS = ScoringParams()


def q(text):
    return parse_query(text)


class TestAxisAndNodetestScores:
    def test_descendant_cheapest(self):
        assert PARAMS.axis_score(Axis.DESCENDANT) == 1
        assert PARAMS.axis_score(Axis.CHILD) == 10
        assert PARAMS.axis_score(Axis.ANCESTOR) == 20
        assert PARAMS.axis_score(Axis.PRECEDING_SIBLING) == 25

    def test_generic_nodetests_cost_one(self):
        assert score_query(q("descendant::node()"), replace(PARAMS, no_predicate_penalty=0)) == 2
        assert score_query(q("descendant::*"), replace(PARAMS, no_predicate_penalty=0)) == 2

    def test_named_tag_costs_default(self):
        assert score_query(q("descendant::div"), replace(PARAMS, no_predicate_penalty=0)) == 11


class TestPredicateScores:
    def test_positional(self):
        # [n]: c_pos * n + s_position = 20n + 1
        assert score_predicate(q("descendant::div[1]").steps[0].predicates[0], PARAMS) == 21
        assert score_predicate(q("descendant::div[3]").steps[0].predicates[0], PARAMS) == 61

    def test_last_minus(self):
        # [last()-n]: c_pos * n + s_last = 20n + 20
        assert score_predicate(q("descendant::div[last()]").steps[0].predicates[0], PARAMS) == 20
        assert score_predicate(q("descendant::div[last()-2]").steps[0].predicates[0], PARAMS) == 60

    def test_attribute_equality(self):
        # equals(@class, "adv"): s_f + s_class + c_f * 3 = 1 + 5 + 3
        pred = q('descendant::img[@class="adv"]').steps[0].predicates[0]
        assert score_predicate(pred, PARAMS) == 9

    def test_attribute_existence_has_no_function_penalty(self):
        # [@id]: y + s_id = 15 + 1
        pred = q("descendant::div[@id]").steps[0].predicates[0]
        assert score_predicate(pred, PARAMS) == 16

    def test_text_predicate(self):
        # starts-with(., "Director:"): s_f + s_text + |w| = 5 + 5 + 9
        pred = q('descendant::div[starts-with(.,"Director:")]').steps[0].predicates[0]
        assert score_predicate(pred, PARAMS) == 19

    def test_unknown_attribute_gets_default(self):
        pred = q('descendant::div[@data-x="1"]').steps[0].predicates[0]
        assert score_predicate(pred, PARAMS) == 1 + 1000 + 1


class TestWorkedExample:
    def test_paper_example_score(self):
        """The paper computes 40 for descendant::img[@class="adv"][1] but its
        arithmetic drops the equals-function score; the formulas as written
        give 41 (= 1 + 10 + (1+5+3) + (20+1))."""
        score = score_query(q('descendant::img[@class="adv"][1]'), PARAMS)
        assert score == 41


class TestDecay:
    def test_later_steps_weighted_by_decay(self):
        params = replace(PARAMS, no_predicate_penalty=0)
        one = score_query(q("descendant::div"), params)
        two = score_query(q("descendant::div/descendant::div"), params)
        assert two == one + one * params.decay

    def test_plus_composability(self):
        """score(q1/q2) = score(q1) + delta^len(q1) * score(q2)."""
        params = replace(PARAMS, no_predicate_penalty=0)
        q1 = q('descendant::div[@id="a"]')
        q2 = q('child::span[@class="b"]/child::a[1]')
        combined = q1.concat(q2)
        expected = score_query(q1, params) + params.decay ** len(q1) * score_query(q2, params)
        assert score_query(combined, params) == pytest.approx(expected)


class TestPenalties:
    def test_query_without_predicates_penalized(self):
        bare = score_query(q("descendant::div"), PARAMS)
        with_pred = score_query(q('descendant::div[@id="a"]'), PARAMS)
        assert bare > with_pred  # 1000-penalty dominates

    def test_penalty_applied_once_per_query(self):
        one = score_query(q("descendant::div"), PARAMS)
        two = score_query(q("descendant::div/descendant::p"), PARAMS)
        # second step adds (1 + 10) * decay and no second 1000-penalty
        assert two - one == pytest.approx(11 * PARAMS.decay)

    def test_step_scope_penalizes_each_bare_step(self):
        params = replace(PARAMS, no_predicate_penalty_scope="step")
        two = score_query(q("descendant::div/descendant::p"), params)
        assert two > 2000


class TestScorerCache:
    def test_cached_score_is_stable(self):
        scorer = Scorer()
        query = q('descendant::div[@id="a"]')
        assert scorer.score(query) == scorer.score(query)

    def test_matches_direct_computation(self):
        scorer = Scorer()
        query = q('descendant::div[@id="a"]/child::span')
        assert scorer.score(query) == score_query(query, scorer.params)


@settings(max_examples=50, deadline=None)
@given(
    st.sampled_from(
        [
            "descendant::div",
            'descendant::div[@id="a"]',
            "descendant::div[2]",
            'descendant::span[contains(.,"x")]',
            "child::li[last()-1]",
        ]
    ),
    st.sampled_from(
        [
            "child::span",
            'descendant::a[@class="b"]',
            "following-sibling::tr",
        ]
    ),
)
def test_concat_composability_property(left, right):
    params = replace(PARAMS, no_predicate_penalty=0)
    q1, q2 = parse_query(left), parse_query(right)
    combined = q1.concat(q2)
    expected = score_query(q1, params) + params.decay ** len(q1) * score_query(q2, params)
    assert score_query(combined, params) == pytest.approx(expected)

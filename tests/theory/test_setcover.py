"""Tests for the Theorem 1 set-cover correspondence."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.theory import (
    SetCoverInstance,
    encode_as_document,
    min_accurate_predicate_count,
    min_cover_size,
)
from repro.theory.setcover import query_is_accurate


class TestEncoding:
    def test_document_shape(self):
        instance = SetCoverInstance.of([1, 2], [[1], [2], [1, 2]])
        doc, target = encode_as_document(instance)
        items = list(doc.root.iter_find(tag="item"))
        assert len(items) == 3  # target + 2 decoys
        assert items[0] is target

    def test_full_cover_query_is_accurate(self):
        instance = SetCoverInstance.of([1, 2, 3], [[1, 2], [3]])
        doc, target = encode_as_document(instance)
        assert query_is_accurate(doc, target, [0, 1])

    def test_partial_cover_query_not_accurate(self):
        instance = SetCoverInstance.of([1, 2, 3], [[1, 2], [3]])
        doc, target = encode_as_document(instance)
        assert not query_is_accurate(doc, target, [0])

    def test_uncovering_family_rejected(self):
        with pytest.raises(ValueError):
            SetCoverInstance.of([1, 2], [[1]])


class TestCorrespondence:
    CASES = [
        ([1, 2, 3], [[1], [2], [3]]),                     # needs all three
        ([1, 2, 3], [[1, 2, 3]]),                         # one set suffices
        ([1, 2, 3, 4], [[1, 2], [3, 4], [1, 3], [2, 4]]),  # cover of size 2
        ([1, 2, 3, 4, 5], [[1, 2, 3], [3, 4], [4, 5], [1, 5]]),
    ]

    @pytest.mark.parametrize("universe,sets", CASES)
    def test_min_query_equals_min_cover(self, universe, sets):
        instance = SetCoverInstance.of(universe, sets)
        doc, target = encode_as_document(instance)
        assert min_accurate_predicate_count(doc, target, len(sets)) == min_cover_size(
            instance
        )


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_correspondence_on_random_instances(seed):
    rng = random.Random(seed)
    universe = list(range(rng.randint(2, 5)))
    n_sets = rng.randint(2, 5)
    sets = [
        [e for e in universe if rng.random() < 0.5] or [rng.choice(universe)]
        for _ in range(n_sets)
    ]
    # ensure coverage
    for element in universe:
        if not any(element in s for s in sets):
            sets[rng.randrange(n_sets)].append(element)
    instance = SetCoverInstance.of(universe, sets)
    doc, target = encode_as_document(instance)
    assert min_accurate_predicate_count(doc, target, n_sets) == min_cover_size(instance)

"""Tests for the canonical, tree-edit [6], and WEIR [2] baselines."""

import pytest

from repro.baselines import (
    CanonicalInducer,
    TreeEditInducer,
    TreeEditModel,
    UnionWrapper,
    WeirInducer,
)
from repro.dom import parse_html
from repro.evolution import SyntheticArchive
from repro.experiments.sota import render_template_variant
from repro.sites.verticals import make_travel_site
from repro.xpath import evaluate


class TestCanonical:
    def test_selects_exactly_the_targets(self, imdb_doc):
        targets = list(imdb_doc.root.iter_find(tag="td", class_="name"))
        wrapper = CanonicalInducer().induce(imdb_doc, targets)
        assert {id(n) for n in wrapper.select(imdb_doc)} == {id(t) for t in targets}

    def test_one_query_per_target(self, imdb_doc):
        targets = list(imdb_doc.root.iter_find(tag="td", class_="name"))
        wrapper = CanonicalInducer().induce(imdb_doc, targets)
        assert len(wrapper.queries) == len(targets)

    def test_empty_targets_rejected(self, imdb_doc):
        with pytest.raises(ValueError):
            CanonicalInducer().induce(imdb_doc, [])

    def test_union_wrapper_str(self, imdb_doc):
        wrapper = CanonicalInducer().induce(imdb_doc, [imdb_doc.find(tag="h1")])
        assert str(wrapper).startswith("/")


class TestTreeEdit:
    def test_induces_accurate_queries(self, imdb_doc):
        target = imdb_doc.find(tag="h1")
        queries = TreeEditInducer().induce(imdb_doc, target)
        assert queries
        for query in queries:
            assert evaluate(query, imdb_doc.root, imdb_doc) == [target]

    def test_fragment_restriction(self, imdb_doc):
        """[6]'s fragment: child/descendant only, ≤1 predicate per step."""
        from repro.xpath.ast import Axis

        target = imdb_doc.find(tag="span")
        for query in TreeEditInducer().induce(imdb_doc, target):
            for step in query.steps:
                assert step.axis in (Axis.CHILD, Axis.DESCENDANT)
                assert len(step.predicates) <= 1

    def test_ranked_by_survival_probability(self, imdb_doc):
        model = TreeEditModel()
        target = imdb_doc.find(tag="h1")
        queries = TreeEditInducer(model=model).induce(imdb_doc, target)
        probabilities = [model.query_probability(q) for q in queries]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_fit_adjusts_priors(self):
        before = parse_html('<div id="a" class="x"><p class="y">1</p></div>')
        after = parse_html('<div id="a" class="z"><p class="y">1</p></div>')
        model = TreeEditModel().fit([(before, after)])
        assert model.class_survival < TreeEditModel().class_survival
        assert model.id_survival >= 0.5

    def test_probability_decreases_with_length(self, imdb_doc):
        from repro.xpath import parse_query

        model = TreeEditModel()
        short = parse_query("descendant::h1")
        long = parse_query("descendant::body/descendant::div/descendant::h1")
        assert model.query_probability(short) > model.query_probability(long)


class TestWeir:
    @pytest.fixture
    def pages_and_targets(self):
        spec = make_travel_site(0)
        archive = SyntheticArchive(spec, n_snapshots=1)
        doc0 = archive.snapshot(0)
        pages = [doc0] + [render_template_variant(spec, j) for j in range(1, 6)]
        targets = [page.find_by_meta("role", "hotel")[0] for page in pages]
        return pages, targets

    def test_produces_multiple_expressions(self, pages_and_targets):
        pages, targets = pages_and_targets
        queries = WeirInducer().induce(pages, targets)
        assert len(queries) >= 2

    def test_every_expression_matches_one_node(self, pages_and_targets):
        pages, targets = pages_and_targets
        for query in WeirInducer().induce(pages, targets):
            result = evaluate(query, pages[0].root, pages[0])
            assert len(result) == 1 and result[0] is targets[0]

    def test_needs_multiple_pages(self, pages_and_targets):
        pages, targets = pages_and_targets
        with pytest.raises(ValueError):
            WeirInducer().induce(pages[:1], targets[:1])

    def test_expression_types(self, pages_and_targets):
        """At least one id-anchored absolute expression exists."""
        pages, targets = pages_and_targets
        queries = [str(q) for q in WeirInducer().induce(pages, targets)]
        assert any("@id=" in q for q in queries)

    def test_output_capped(self, pages_and_targets):
        pages, targets = pages_and_targets
        assert len(WeirInducer(max_expressions=3).induce(pages, targets)) <= 3

"""Pruned-search parity against the golden induction corpus.

``search="pruned"`` trades exhaustiveness for speed, so it is allowed
to pick a *different* best query than the exhaustive default — but
never a meaningfully *worse* one.  This suite re-induces the golden
corpus (both the hand-written single-node tasks and the pinned
generated-family members) under pruned search and enforces the
documented tolerance: the best query's F1 may trail the frozen
exhaustive result by at most ``QUALITY_TOLERANCE``.

It also pins down the two properties the fast path promises:

* pruning actually engages on pages wide enough to need it (the
  counters are non-zero — a silently disabled pruner would pass the
  quality floor trivially);
* pruned search is deterministic: same document + config → identical
  export, run to run and regardless of what was induced before.
"""

import json
import pathlib

import pytest

from repro.induction.config import InductionConfig
from repro.induction.induce import WrapperInducer
from repro.runtime.corpus import induce_corpus_task, snapshot0_annotation
from repro.sitegen.golden import golden_sitegen_tasks
from repro.sites import single_node_tasks

#: The documented parity tolerance (matched by bench_induction.py and
#: the CI induction-parity step): pruned best-query F1 may trail the
#: frozen exhaustive F1 by at most this much on any golden task.
QUALITY_TOLERANCE = 0.01

GOLDEN_PATH = pathlib.Path(__file__).parent.parent / "golden" / "induction.json"
_GOLDEN_DOC = json.loads(GOLDEN_PATH.read_text())

PRUNED_CONFIG = InductionConfig(search="pruned")

ALL_TASKS = [
    (corpus_task, _GOLDEN_DOC["tasks"][corpus_task.task_id])
    for corpus_task in single_node_tasks()
] + [
    (corpus_task, _GOLDEN_DOC["sitegen_tasks"][corpus_task.task_id])
    for corpus_task in golden_sitegen_tasks()
]


def _f1(tp: int, fp: int, fn: int) -> float:
    denominator = 2 * tp + fp + fn
    return 2 * tp / denominator if denominator else 0.0


@pytest.mark.parametrize(
    "corpus_task,golden", ALL_TASKS, ids=lambda value: getattr(value, "task_id", "")
)
def test_pruned_search_stays_within_tolerance(corpus_task, golden):
    induced = induce_corpus_task(
        corpus_task, WrapperInducer(k=10, config=PRUNED_CONFIG)
    )
    assert induced is not None
    best = induced[0].best
    assert best is not None, f"{corpus_task.task_id}: pruned search found no wrapper"
    frozen_f1 = _f1(golden["tp"], golden["fp"], golden["fn"])
    pruned_f1 = _f1(best.tp, best.fp, best.fn)
    assert pruned_f1 >= frozen_f1 - QUALITY_TOLERANCE, (
        f"{corpus_task.task_id}: pruned best {best.query} has F1 {pruned_f1:.3f}, "
        f"frozen exhaustive F1 is {frozen_f1:.3f} "
        f"(tolerance {QUALITY_TOLERANCE})"
    )


def _wide_annotation():
    """A corpus page wide enough that the stochastic beam engages."""
    for corpus_task in single_node_tasks():
        annotation = snapshot0_annotation(corpus_task)
        if annotation is None:
            continue
        doc, targets = annotation
        inducer = WrapperInducer(k=10, config=PRUNED_CONFIG)
        result = inducer.induce_one(doc, targets)
        if result.stats is not None and result.stats.candidates_pruned:
            return doc, targets
    raise AssertionError("no corpus page engaged the pruner")


class TestPruningEngages:
    def test_counters_are_populated(self):
        doc, targets = _wide_annotation()
        result = WrapperInducer(k=10, config=PRUNED_CONFIG).induce_one(doc, targets)
        assert result.stats is not None
        assert result.stats.search == "pruned"
        assert result.stats.candidates_considered > 0
        assert result.stats.candidates_pruned > 0

    def test_exhaustive_reports_no_pruning(self):
        doc, targets = _wide_annotation()
        result = WrapperInducer(k=10).induce_one(doc, targets)
        assert result.stats is not None
        assert result.stats.search == "exhaustive"
        assert result.stats.candidates_pruned == 0


class TestPrunedDeterminism:
    def test_repeated_runs_are_identical(self):
        doc, targets = _wide_annotation()
        inducer = WrapperInducer(k=10, config=PRUNED_CONFIG)
        first = inducer.induce_one(doc, targets).export()
        for _ in range(2):
            assert inducer.induce_one(doc, targets).export() == first

    def test_independent_of_prior_inductions(self):
        """The pruner must not leak state between documents: inducing
        other tasks first cannot change a task's pruned result."""
        doc, targets = _wide_annotation()
        fresh = WrapperInducer(k=10, config=PRUNED_CONFIG)
        baseline = fresh.induce_one(doc, targets).export()
        busy = WrapperInducer(k=10, config=PRUNED_CONFIG)
        for corpus_task in single_node_tasks(limit=3):
            induce_corpus_task(corpus_task, busy)
        assert busy.induce_one(doc, targets).export() == baseline

    def test_seed_changes_move_the_beam_deterministically(self):
        doc, targets = _wide_annotation()
        reseeded = InductionConfig(search="pruned", prune_seed=7)
        first = WrapperInducer(k=10, config=reseeded).induce_one(doc, targets)
        second = WrapperInducer(k=10, config=reseeded).induce_one(doc, targets)
        assert first.export() == second.export()

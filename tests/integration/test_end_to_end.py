"""Cross-module integration properties.

These tie the whole pipeline together: induced wrappers respect the
paper's robustness *definition* across snapshots on which they stay
valid; induction over the corpus stays in the dsXPath fragment and is
plausible; noise resistance holds at the modest intensities the paper's
automated setting produces.
"""

import random

import pytest

from repro.evolution import SyntheticArchive
from repro.induction import WrapperInducer
from repro.metrics.robustness import query_robust_between, wrapper_matches_targets
from repro.noise.synthetic import apply_noise
from repro.sites import multi_node_tasks, single_node_tasks
from repro.xpath.fragment import is_ds_query, is_plausible


@pytest.mark.parametrize("corpus_task", single_node_tasks(limit=6), ids=lambda t: t.task_id)
class TestInducedWrapperInvariants:
    def test_top1_is_plausible_ds_query(self, corpus_task):
        archive = SyntheticArchive(corpus_task.spec, n_snapshots=1)
        doc = archive.snapshot(0)
        targets = archive.targets(doc, corpus_task.task.role)
        result = WrapperInducer(k=10).induce_one(doc, targets)
        assert result.best is not None
        assert is_ds_query(result.best.query)
        assert is_plausible(result.best.query, [doc])
        assert wrapper_matches_targets(result.best.query, doc, targets)


class TestRobustnessDefinition:
    def test_validity_with_stable_subtree_implies_definition(self):
        """On a site whose target data is stable (movies), a wrapper that
        still selects the logically-same node — and whose subtree has not
        been touched by attribute churn — satisfies the paper's
        subtree-bijection robustness between those snapshots.  (Validity
        alone is weaker: a renamed class on the still-matched target
        breaks the bijection but not the extraction.)"""
        from repro.dom.signatures import subtree_signature

        task = next(
            t for t in single_node_tasks() if t.task.role == "director"
        )
        archive = SyntheticArchive(task.spec, n_snapshots=8)
        doc0 = archive.snapshot(0)
        targets0 = archive.targets(doc0, "director")
        signature0 = subtree_signature(targets0[0])
        result = WrapperInducer(k=10).induce_one(doc0, targets0)
        query = result.best.query
        checked = 0
        for index in range(1, 8):
            if archive.is_broken(index):
                continue
            doc = archive.snapshot(index)
            truth = archive.targets(doc, "director")
            if not truth or not wrapper_matches_targets(query, doc, truth):
                break
            if subtree_signature(truth[0]) == signature0:
                assert query_robust_between(query, doc0, doc)
                checked += 1
        assert checked >= 1


class TestNoiseResistanceIntegration:
    @pytest.mark.parametrize("noise_type", ["positive_random", "negative_mid_random"])
    def test_mild_noise_keeps_top1(self, noise_type):
        """At 10% intensity, the paper reports ≈90%+ identical results;
        check a handful of corpus samples stay identical."""
        inducer = WrapperInducer(k=10)
        identical = total = 0
        for corpus_task in multi_node_tasks(limit=5):
            archive = SyntheticArchive(corpus_task.spec, n_snapshots=1)
            doc = archive.snapshot(0)
            targets = archive.targets(doc, corpus_task.task.role)
            if len(targets) < 4:
                continue
            clean = inducer.induce_one(doc, targets)
            noisy_targets = apply_noise(
                noise_type, doc, targets, 0.1, random.Random(13)
            )
            noisy = inducer.induce_one(doc, noisy_targets)
            total += 1
            identical += clean.best.query == noisy.best.query
        assert total >= 3
        assert identical / total >= 0.6

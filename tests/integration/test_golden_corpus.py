"""Golden regression corpus: induction must reproduce frozen results.

``tests/golden/induction.json`` freezes the best induced query
(canonical text + robustness score + accuracy counts) for **every**
single-node corpus task.  Any change to candidate generation, scoring,
or ranking that silently moves a single top-1 result fails here —
bit-for-bit, not approximately.

Intentional changes regenerate the file
(``PYTHONPATH=src python tests/golden/regenerate.py``) and justify the
diff in the PR.
"""

import json
import pathlib

import pytest

from repro.runtime.corpus import induce_corpus_task
from repro.sitegen.golden import golden_sitegen_tasks
from repro.sites import single_node_tasks

GOLDEN_PATH = pathlib.Path(__file__).parent.parent / "golden" / "induction.json"
_GOLDEN_DOC = json.loads(GOLDEN_PATH.read_text())
GOLDEN = _GOLDEN_DOC["tasks"]
GOLDEN_SITEGEN = _GOLDEN_DOC["sitegen_tasks"]
TASKS = single_node_tasks()
SITEGEN_TASKS = golden_sitegen_tasks()


class TestGoldenCoverage:
    def test_every_single_node_task_is_frozen(self):
        """New tasks must be added to the golden corpus (regenerate it)."""
        missing = {t.task_id for t in TASKS} - GOLDEN.keys()
        assert not missing, f"tasks missing from golden corpus: {sorted(missing)}"

    def test_no_stale_golden_entries(self):
        """Removed tasks must leave the golden corpus (regenerate it)."""
        stale = GOLDEN.keys() - {t.task_id for t in TASKS}
        assert not stale, f"golden entries for unknown tasks: {sorted(stale)}"

    def test_corpus_is_complete(self):
        assert len(GOLDEN) >= 50  # the paper's single-node dataset size

    def test_sitegen_roster_matches_golden(self):
        """The pinned generated-family tasks and the golden file must
        list exactly the same task ids (regenerate after roster edits)."""
        assert {t.task_id for t in SITEGEN_TASKS} == GOLDEN_SITEGEN.keys()


def _assert_reproduces(corpus_task, golden):
    induced = induce_corpus_task(corpus_task)
    assert induced is not None
    best = induced[0].best
    assert best is not None
    assert str(best.query) == golden["query"]
    assert best.score == golden["score"]
    assert (best.tp, best.fp, best.fn) == (golden["tp"], golden["fp"], golden["fn"])


@pytest.mark.parametrize("corpus_task", TASKS, ids=lambda t: t.task_id)
def test_induction_reproduces_golden(corpus_task):
    _assert_reproduces(corpus_task, GOLDEN[corpus_task.task_id])


@pytest.mark.parametrize("corpus_task", SITEGEN_TASKS, ids=lambda t: t.task_id)
def test_induction_reproduces_golden_sitegen(corpus_task):
    _assert_reproduces(corpus_task, GOLDEN_SITEGEN[corpus_task.task_id])

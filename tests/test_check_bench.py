"""The CI bench-regression gate (``scripts/check_bench.py``).

Runs the script as a subprocess — exactly how CI invokes it — against
synthetic baseline/current pairs, including the demonstrated-failure
case the acceptance criteria require (a >20% regression must fail)."""

import json
import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_bench.py"

BASELINE = {
    "current": {"serial_s": 1.0, "fast_s": 0.25},
    "speedup": {"fast_vs_serial": 4.0},
    "throughput": {"served_vs_serial": 2.0},
}


def run_gate(baseline_dir, current_dir, *extra):
    return subprocess.run(
        [sys.executable, str(SCRIPT), "--baseline-dir", str(baseline_dir),
         "--current-dir", str(current_dir), *extra],
        capture_output=True,
        text=True,
    )


def write(directory, name, payload):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(payload))


@pytest.fixture
def dirs(tmp_path):
    baseline, current = tmp_path / "baseline", tmp_path / "current"
    write(baseline, "BENCH_demo.json", BASELINE)
    return baseline, current


class TestGate:
    def test_identical_numbers_pass(self, dirs):
        baseline, current = dirs
        write(current, "BENCH_demo.json", BASELINE)
        result = run_gate(baseline, current)
        assert result.returncode == 0, result.stdout + result.stderr
        assert "all headline ratios within" in result.stdout

    def test_small_regression_within_tolerance_passes(self, dirs):
        baseline, current = dirs
        payload = json.loads(json.dumps(BASELINE))
        payload["speedup"]["fast_vs_serial"] = 4.0 * 0.85  # -15%: inside 20%
        write(current, "BENCH_demo.json", payload)
        assert run_gate(baseline, current).returncode == 0

    def test_synthetic_twenty_percent_regression_fails(self, dirs):
        """The acceptance-criteria case: >20% off the baseline ratio."""
        baseline, current = dirs
        payload = json.loads(json.dumps(BASELINE))
        payload["speedup"]["fast_vs_serial"] = 4.0 * 0.75  # -25%
        write(current, "BENCH_demo.json", payload)
        result = run_gate(baseline, current)
        assert result.returncode == 1
        assert "FAIL BENCH_demo.json:speedup.fast_vs_serial" in result.stdout

    def test_improvements_pass(self, dirs):
        baseline, current = dirs
        payload = json.loads(json.dumps(BASELINE))
        payload["speedup"]["fast_vs_serial"] = 9.0
        payload["throughput"]["served_vs_serial"] = 3.5
        write(current, "BENCH_demo.json", payload)
        assert run_gate(baseline, current).returncode == 0

    def test_dropped_metric_fails(self, dirs):
        baseline, current = dirs
        payload = json.loads(json.dumps(BASELINE))
        del payload["throughput"]["served_vs_serial"]
        write(current, "BENCH_demo.json", payload)
        result = run_gate(baseline, current)
        assert result.returncode == 1
        assert "missing from current run" in result.stdout

    def test_missing_current_file_fails(self, dirs):
        baseline, current = dirs
        current.mkdir()
        assert run_gate(baseline, current).returncode == 1

    def test_tolerance_is_configurable(self, dirs):
        baseline, current = dirs
        payload = json.loads(json.dumps(BASELINE))
        payload["speedup"]["fast_vs_serial"] = 4.0 * 0.75  # -25%
        write(current, "BENCH_demo.json", payload)
        assert run_gate(baseline, current, "--tolerance", "0.3").returncode == 0

    def test_missing_baseline_dir_is_setup_error(self, tmp_path):
        assert run_gate(tmp_path / "nope", tmp_path).returncode == 2

    def test_xpath_file_gets_the_wide_seed_relative_band(self, tmp_path):
        """BENCH_xpath ratios are vs fixed seed constants (they scale
        with host speed), so they get a 60% band: -40% passes, -70%
        still fails."""
        baseline, current = tmp_path / "baseline", tmp_path / "current"
        payload = {"speedup": {"following_axis_200_s": 100.0}}
        write(baseline, "BENCH_xpath.json", payload)
        write(current, "BENCH_xpath.json", {"speedup": {"following_axis_200_s": 60.0}})
        assert run_gate(baseline, current).returncode == 0
        write(current, "BENCH_xpath.json", {"speedup": {"following_axis_200_s": 30.0}})
        result = run_gate(baseline, current)
        assert result.returncode == 1
        assert "FAIL" in result.stdout

    def test_new_metrics_in_current_are_reported_not_gated(self, dirs):
        """A bench growing a metric (e.g. BENCH_net's auth-overhead
        ratio) must not invalidate the committed baseline: the new
        ratio is reported as informational, never compared — even when
        its value would fail any tolerance."""
        baseline, current = dirs
        payload = json.loads(json.dumps(BASELINE))
        payload["speedup"]["brand_new"] = 0.01
        write(current, "BENCH_demo.json", payload)
        result = run_gate(baseline, current)
        assert result.returncode == 0
        assert "new  BENCH_demo.json:speedup.brand_new" in result.stdout
        assert "not gated" in result.stdout

    def test_gate_applies_false_skips_comparison_either_side(self, tmp_path):
        """A bench that disarmed itself (``gate_applies: false`` — e.g.
        the cluster bench on a single-CPU host) is reported, never
        compared: a 1-CPU run must not fail against a multi-core
        baseline, nor a 1-CPU baseline rubber-stamp a regression."""
        baseline, current = tmp_path / "baseline", tmp_path / "current"
        strong = {"throughput": {"r": 2.0}, "gate_applies": True}
        weak = {"throughput": {"r": 0.8}, "gate_applies": False}
        # current disarmed: huge apparent drop, still passes as a skip
        write(baseline, "BENCH_demo.json", strong)
        write(current, "BENCH_demo.json", weak)
        result = run_gate(baseline, current)
        assert result.returncode == 0
        assert "skip" in result.stdout and "gate_applies" in result.stdout
        # baseline disarmed: the weak number must not gate anything
        write(baseline, "BENCH_demo.json", weak)
        write(current, "BENCH_demo.json", {"throughput": {"r": 0.1}})
        assert run_gate(baseline, current).returncode == 0
        # both armed: the same drop fails as usual
        write(baseline, "BENCH_demo.json", strong)
        write(current, "BENCH_demo.json", {"throughput": {"r": 0.1}})
        assert run_gate(baseline, current).returncode == 1

    def test_gate_applies_dict_disarms_per_metric(self, tmp_path):
        """``gate_applies`` may be a dict of metric labels, so one file
        can mix always-gated ratios with self-arming ones (BENCH_net's
        cache ratio on a 1-CPU runner).  Unlisted metrics stay gated."""
        baseline, current = tmp_path / "baseline", tmp_path / "current"
        write(
            baseline,
            "BENCH_demo.json",
            {"throughput": {"armed": 2.0, "selfarming": 3.0}},
        )
        write(
            current,
            "BENCH_demo.json",
            {
                "throughput": {"armed": 2.0, "selfarming": 0.1},
                "gate_applies": {"throughput.selfarming": False},
            },
        )
        result = run_gate(baseline, current)
        assert result.returncode == 0
        assert "skip BENCH_demo.json:throughput.selfarming" in result.stdout
        assert "ok   BENCH_demo.json:throughput.armed" in result.stdout
        # The unlisted metric is still gated: regress it and the run fails.
        write(
            current,
            "BENCH_demo.json",
            {
                "throughput": {"armed": 0.1, "selfarming": 0.1},
                "gate_applies": {"throughput.selfarming": False},
            },
        )
        result = run_gate(baseline, current)
        assert result.returncode == 1
        assert "FAIL BENCH_demo.json:throughput.armed" in result.stdout

    def test_summary_file_gets_the_markdown_table(self, dirs, tmp_path):
        """``--summary`` (CI passes ``$GITHUB_STEP_SUMMARY``) appends a
        markdown ratio table covering ok, FAIL, skip, and new rows."""
        baseline, current = dirs
        payload = json.loads(json.dumps(BASELINE))
        payload["speedup"]["fast_vs_serial"] = 4.0 * 0.5  # -50%: FAIL
        payload["speedup"]["brand_new"] = 1.5  # new
        payload["gate_applies"] = {"throughput.served_vs_serial": False}  # skip
        write(current, "BENCH_demo.json", payload)
        summary = tmp_path / "step_summary.md"
        summary.write_text("earlier content\n")
        result = run_gate(baseline, current, "--summary", str(summary))
        assert result.returncode == 1
        text = summary.read_text()
        assert text.startswith("earlier content\n")  # append, never truncate
        assert "| file | headline | baseline | current | verdict |" in text
        assert "| BENCH_demo.json | speedup.fast_vs_serial | 4.00x | 2.00x | FAIL" in text
        assert "skip (gate_applies: false)" in text
        assert "new (reported, not gated)" in text
        assert "1 headline ratio(s) regressed" in text

    def test_summary_defaults_to_github_step_summary_env(self, dirs, tmp_path):
        baseline, current = dirs
        write(current, "BENCH_demo.json", BASELINE)
        summary = tmp_path / "gh_summary.md"
        result = subprocess.run(
            [sys.executable, str(SCRIPT), "--baseline-dir", str(baseline),
             "--current-dir", str(current)],
            capture_output=True,
            text=True,
            env={**os.environ, "GITHUB_STEP_SUMMARY": str(summary)},
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "### Bench regression gate" in summary.read_text()
        assert "All headline ratios within tolerance" in summary.read_text()


class TestRealBaselines:
    def test_committed_baselines_cover_every_bench_file(self):
        names = sorted(
            p.name for p in (REPO_ROOT / "benchmarks" / "baselines").glob("BENCH_*.json")
        )
        assert names == [
            "BENCH_cluster.json",
            "BENCH_induction.json",
            "BENCH_net.json",
            "BENCH_runtime.json",
            "BENCH_serving.json",
            "BENCH_sitegen.json",
            "BENCH_xpath.json",
        ]
        for name in names:
            payload = json.loads(
                (REPO_ROOT / "benchmarks" / "baselines" / name).read_text()
            )
            sections = [s for s in ("speedup", "throughput") if s in payload]
            assert sections, f"{name} has no headline ratio section"

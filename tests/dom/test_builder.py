"""Tests for the programmatic tree builder."""

from repro.dom import E, T, document
from repro.dom.node import ElementNode, TextNode


class TestE:
    def test_builds_element_with_children(self):
        node = E("div", E("span"), "text")
        assert node.tag == "div"
        assert isinstance(node.children[0], ElementNode)
        assert isinstance(node.children[1], TextNode)

    def test_none_children_skipped(self):
        node = E("div", None, E("p"), None)
        assert [c.tag for c in node.element_children()] == ["p"]

    def test_trailing_underscore_stripped(self):
        node = E("div", class_="x", for_="y")
        assert node.attrs == {"class": "x", "for": "y"}

    def test_inner_underscores_become_dashes(self):
        node = E("div", data_id="7")
        assert node.attrs == {"data-id": "7"}

    def test_children_get_parents(self):
        child = E("span")
        parent = E("div", child)
        assert child.parent is parent


class TestT:
    def test_text_node(self):
        assert T("hi").text == "hi"


class TestDocument:
    def test_document_wraps_root(self):
        doc = document(E("html", E("body")))
        assert doc.root.tag == "#document"
        assert doc.root_element.tag == "html"

    def test_url(self):
        doc = document(E("html"), url="http://x/")
        assert doc.url == "http://x/"

    def test_with_meta_chaining(self):
        node = E("span").with_meta(role="target", extra=1)
        assert node.meta == {"role": "target", "extra": 1}

"""Tests for HTML parsing."""

from repro.dom import parse_html, to_html
from repro.dom.node import ElementNode, TextNode


class TestParseHtml:
    def test_simple_document(self):
        doc = parse_html("<html><body><p>hi</p></body></html>")
        assert doc.root_element.tag == "html"
        p = doc.find(tag="p")
        assert p.normalized_text() == "hi"

    def test_attributes(self):
        doc = parse_html('<div id="x" class="a b">t</div>')
        div = doc.find(tag="div")
        assert div.attrs == {"id": "x", "class": "a b"}

    def test_void_elements_have_no_children(self):
        doc = parse_html("<div><img src='a.png'><p>after</p></div>")
        img = doc.find(tag="img")
        assert img.children == []
        assert doc.find(tag="p").parent is doc.find(tag="div")

    def test_self_closing_syntax(self):
        doc = parse_html("<div><br/><span>x</span></div>")
        assert doc.find(tag="br") is not None
        assert doc.find(tag="span").normalized_text() == "x"

    def test_stray_end_tag_ignored(self):
        doc = parse_html("<div></span><p>ok</p></div>")
        assert doc.find(tag="p").normalized_text() == "ok"

    def test_unclosed_tags_close_at_eof(self):
        doc = parse_html("<div><p>one<p>two")
        # lenient: both paragraphs parsed somewhere under the div
        texts = [n.text for n in doc.root.descendants() if isinstance(n, TextNode)]
        assert texts == ["one", "two"]

    def test_whitespace_only_text_dropped(self):
        doc = parse_html("<div>\n   <p>x</p>\n  </div>")
        div = doc.find(tag="div")
        assert all(not isinstance(c, TextNode) for c in div.children)

    def test_keep_whitespace_option(self):
        doc = parse_html("<div> <p>x</p></div>", keep_whitespace=True)
        div = doc.find(tag="div")
        assert isinstance(div.children[0], TextNode)

    def test_entities_decoded(self):
        doc = parse_html("<p>a &amp; b</p>")
        assert doc.find(tag="p").normalized_text() == "a & b"

    def test_script_content_dropped(self):
        doc = parse_html("<div><script>var x = '<div>';</script><p>y</p></div>")
        script = doc.find(tag="script")
        assert script.text_value() == ""

    def test_comments_ignored(self):
        doc = parse_html("<div><!-- note --><p>x</p></div>")
        assert doc.find(tag="div").element_children()[0].tag == "p"

    def test_fragment_with_multiple_roots(self):
        doc = parse_html("<p>a</p><p>b</p>")
        assert len(doc.root.element_children()) == 2

    def test_url_recorded(self):
        doc = parse_html("<p>x</p>", url="http://example.com/")
        assert doc.url == "http://example.com/"


class TestRoundTrip:
    def test_compact_serialization_roundtrips(self):
        html = '<html><body><div id="a"><p>one</p><p>two &amp; three</p></div></body></html>'
        doc = parse_html(html)
        again = parse_html(to_html(doc))
        from repro.dom.signatures import subtree_signature

        assert subtree_signature(doc.root) == subtree_signature(again.root)

    def test_serialize_escapes_attribute_quotes(self):
        doc = parse_html("<div title='a&quot;b'>x</div>")
        out = to_html(doc)
        assert 'title="a&quot;b"' in out

    def test_pretty_print_contains_indent(self):
        doc = parse_html("<div><p>x</p></div>")
        pretty = to_html(doc, indent=2)
        assert "\n" in pretty

"""Unit tests for the document tree model."""

import pytest

from repro.dom import Document, E, T, document
from repro.dom.node import AttributeNode, ElementNode, TextNode, normalize_space


class TestNormalizeSpace:
    def test_collapses_runs(self):
        assert normalize_space("a   b\n\tc") == "a b c"

    def test_strips_ends(self):
        assert normalize_space("  hi  ") == "hi"

    def test_empty(self):
        assert normalize_space("   ") == ""


class TestTreeStructure:
    def test_append_child_sets_parent(self):
        parent = ElementNode("div")
        child = ElementNode("span")
        parent.append_child(child)
        assert child.parent is parent
        assert parent.children == [child]

    def test_insert_child_position(self):
        parent = E("div", E("a"), E("b"))
        new = ElementNode("x")
        parent.insert_child(1, new)
        assert [c.tag for c in parent.children] == ["a", "x", "b"]

    def test_remove_child_detaches(self):
        child = ElementNode("span")
        parent = E("div", child)
        parent.remove_child(child)
        assert child.parent is None
        assert parent.children == []

    def test_replace_child(self):
        old = ElementNode("old")
        parent = E("div", old)
        new = ElementNode("new")
        parent.replace_child(old, new)
        assert parent.children == [new]
        assert new.parent is parent
        assert old.parent is None

    def test_index_in_parent(self):
        a, b = ElementNode("a"), ElementNode("b")
        E("div", a, b)
        assert a.index_in_parent() == 0
        assert b.index_in_parent() == 1

    def test_index_in_parent_detached_raises(self):
        with pytest.raises(ValueError):
            ElementNode("div").index_in_parent()

    def test_ancestors_nearest_first(self):
        leaf = ElementNode("leaf")
        mid = E("mid", leaf)
        top = E("top", mid)
        assert list(leaf.ancestors()) == [mid, top]

    def test_siblings(self):
        a, b, c = ElementNode("a"), ElementNode("b"), ElementNode("c")
        E("div", a, b, c)
        assert list(b.following_siblings()) == [c]
        assert list(b.preceding_siblings()) == [a]

    def test_preceding_siblings_reverse_order(self):
        a, b, c = ElementNode("a"), ElementNode("b"), ElementNode("c")
        E("div", a, b, c)
        assert list(c.preceding_siblings()) == [b, a]  # nearest first


class TestTextValue:
    def test_concatenates_descendant_text(self):
        node = E("div", T("Director: "), E("span", T("Martin Scorsese")))
        assert node.text_value() == "Director: Martin Scorsese"

    def test_normalized_text(self):
        node = E("div", T("  a  "), E("b", T("  c ")))
        assert node.normalized_text() == "a c"


class TestAttributes:
    def test_attribute_node_is_stable(self):
        node = ElementNode("div", {"id": "x"})
        assert node.attribute_node("id") is node.attribute_node("id")

    def test_attribute_node_missing(self):
        assert ElementNode("div").attribute_node("id") is None

    def test_attribute_value_tracks_element(self):
        node = ElementNode("div", {"id": "x"})
        attr = node.attribute_node("id")
        node.set_attr("id", "y")
        assert attr.value == "y"

    def test_attribute_nodes_sorted(self):
        node = ElementNode("div", {"b": "2", "a": "1"})
        assert [a.name for a in node.attribute_nodes()] == ["a", "b"]


class TestDocument:
    def test_wraps_root_in_document_node(self):
        doc = document(E("html", E("body")))
        assert doc.root.tag == "#document"
        assert doc.root_element.tag == "html"

    def test_order_key_document_order(self):
        a = E("a")
        b = E("b", E("c"))
        doc = document(E("html", a, b))
        nodes = [doc.root] + list(doc.root.descendants())
        keys = [doc.order_key(n) for n in nodes]
        assert keys == sorted(keys)

    def test_sort_nodes_dedupes(self):
        a = E("a")
        doc = document(E("html", a))
        assert doc.sort_nodes([a, a]) == [a]

    def test_contains(self):
        a = E("a")
        doc = document(E("html", a))
        assert doc.contains(a)
        assert not doc.contains(ElementNode("stranger"))

    def test_normalized_text_cached(self):
        span = E("span", T("x"))
        doc = document(E("html", span))
        assert doc.normalized_text(span) == "x"
        assert doc.normalized_text(span) == "x"

    def test_invalidate_refreshes_order(self):
        body = E("body")
        doc = document(E("html", body))
        new = ElementNode("div")
        body.append_child(new)
        doc.invalidate()
        assert doc.contains(new)

    def test_find_by_meta(self):
        target = E("span").with_meta(role="director")
        doc = document(E("html", E("body", target)))
        assert doc.find_by_meta("role", "director") == [target]

    def test_node_count(self):
        doc = document(E("html", E("body", E("div"), T("x"))))
        assert doc.node_count() == 5  # #document, html, body, div, text


class TestDocumentIndex:
    def test_pre_post_intervals_cover_subtrees(self):
        inner = E("span", T("x"))
        branch = E("div", inner, E("p"))
        doc = document(E("html", branch, E("footer")))
        index = doc.index
        assert index.nodes[branch._pre] is branch
        subtree = index.nodes[branch._pre + 1 : branch._post + 1]
        assert subtree == list(branch.descendants())

    def test_node_id_stable_ints(self):
        a, b = E("a"), E("b")
        doc = document(E("html", a, b))
        ids = {doc.node_id(n) for n in doc.all_nodes()}
        assert ids == set(range(doc.node_count()))
        assert doc.node_id(a) == doc.node_id(a)
        assert doc.node_id(a) != doc.node_id(b)

    def test_node_id_attribute_nodes(self):
        a = E("a", href="/x", class_="k")
        doc = document(E("html", a))
        href = a.attribute_node("href")
        klass = a.attribute_node("class")
        assert doc.node_id(href) != doc.node_id(klass)
        assert doc.node_id(href) == doc.node_id(href)  # stable
        assert doc.node_id(href) >= doc.node_count()

    def test_node_id_rejects_foreign_nodes(self):
        doc = document(E("html"))
        with pytest.raises(KeyError):
            doc.node_id(ElementNode("stranger"))

    def test_tag_and_attr_indexes_in_document_order(self):
        doc = document(
            E("html", E("div", E("span", id="s1")), E("div", id="d2"), E("span"))
        )
        index = doc.index
        for bucket in (index.tag_nodes["div"], index.tag_nodes["span"],
                       index.attr_nodes["id"], index.elements):
            keys = [doc.order_key(n) for n in bucket]
            assert keys == sorted(keys)
        assert [n.tag for n in index.attr_nodes["id"]] == ["span", "div"]

    def test_is_ancestor_interval_test(self):
        leaf = E("em")
        mid = E("p", leaf)
        doc = document(E("html", E("body", mid), E("aside")))
        doc.index
        assert doc.is_ancestor(mid, leaf)
        assert doc.is_ancestor(doc.root, leaf)
        assert not doc.is_ancestor(leaf, mid)
        assert not doc.is_ancestor(leaf, leaf)

    def test_invalidate_rebuilds_under_fresh_stamp(self):
        body = E("body")
        doc = document(E("html", body))
        first = doc.index.stamp
        body.append_child(E("div"))
        doc.invalidate()
        assert doc.index.stamp != first
        assert doc.contains(body.children[0])
        assert [n._pre for n in doc.all_nodes()] == list(range(doc.node_count()))

    def test_index_in_parent_self_heals_after_mutation(self):
        a, b, c = E("a"), E("b"), E("c")
        parent = E("div", a, c)
        document(E("html", parent))
        assert c.index_in_parent() == 1
        parent.insert_child(1, b)  # displaces c without telling it
        assert b.index_in_parent() == 1
        assert c.index_in_parent() == 2

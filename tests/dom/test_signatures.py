"""Tests for abstract subtree signatures (robustness bijection base)."""

from repro.dom import E, T, parse_html
from repro.dom.signatures import (
    signature_multiset,
    subtree_bijection_exists,
    subtree_signature,
)


class TestSubtreeSignature:
    def test_equal_for_structurally_equal_trees(self):
        a = E("div", E("span", T("x")), class_="c")
        b = E("div", E("span", T("x")), class_="c")
        assert subtree_signature(a) == subtree_signature(b)

    def test_differs_on_text(self):
        assert subtree_signature(E("p", T("a"))) != subtree_signature(E("p", T("b")))

    def test_differs_on_attributes(self):
        assert subtree_signature(E("p", id="a")) != subtree_signature(E("p", id="b"))

    def test_differs_on_child_order(self):
        a = E("div", E("a"), E("b"))
        b = E("div", E("b"), E("a"))
        assert subtree_signature(a) != subtree_signature(b)

    def test_attribute_order_irrelevant(self):
        a = E("div")
        a.set_attr("x", "1")
        a.set_attr("y", "2")
        b = E("div")
        b.set_attr("y", "2")
        b.set_attr("x", "1")
        assert subtree_signature(a) == subtree_signature(b)

    def test_meta_is_invisible(self):
        a = E("div").with_meta(role="target")
        b = E("div")
        assert subtree_signature(a) == subtree_signature(b)


class TestBijection:
    def test_bijection_exists_for_permutation(self):
        xs = [E("p", T("a")), E("p", T("b"))]
        ys = [E("p", T("b")), E("p", T("a"))]
        assert subtree_bijection_exists(xs, ys)

    def test_no_bijection_for_different_multiplicity(self):
        xs = [E("p", T("a")), E("p", T("a"))]
        ys = [E("p", T("a")), E("p", T("b"))]
        assert not subtree_bijection_exists(xs, ys)

    def test_multiset_counts(self):
        nodes = [E("p", T("a")), E("p", T("a"))]
        counts = signature_multiset(nodes)
        assert set(counts.values()) == {2}

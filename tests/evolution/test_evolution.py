"""Tests for the page-evolution simulator."""

import random

import pytest

from repro.evolution import ChangeModel, SyntheticArchive, evolve_state, initial_state
from repro.evolution.changes import rename_attribute_value
from repro.sites.verticals import make_movies_site, make_news_site


@pytest.fixture
def spec():
    return make_movies_site(0)


class TestChangeModel:
    def test_scaled_preserves_structure(self):
        model = ChangeModel().scaled(2.0)
        assert model.p_class_rename == pytest.approx(ChangeModel().p_class_rename * 2)
        assert model.data_churn_rate == ChangeModel().data_churn_rate

    def test_rename_changes_value(self):
        rng = random.Random(0)
        for value in ["headline20", "hp-content-block", "searchInputArea", "adv"]:
            renamed = rename_attribute_value(value, rng)
            assert renamed  # never empty

    def test_rename_is_usually_different(self):
        rng = random.Random(1)
        different = sum(
            rename_attribute_value("content-block", rng) != "content-block"
            for _ in range(20)
        )
        assert different >= 18


class TestStateEvolution:
    def test_initial_state_within_bounds(self, spec):
        state = initial_state(spec.profile, spec.initial_rng())
        for name, knob in spec.profile.counts.items():
            assert knob.minimum <= state.counts[name] <= knob.maximum
        for name, knob in spec.profile.lists.items():
            assert knob.minimum <= state.lists[name] <= knob.maximum

    def test_evolution_advances_clock(self, spec):
        state = initial_state(spec.profile, spec.initial_rng())
        nxt = evolve_state(spec.profile, state, spec.change_model, random.Random(0))
        assert nxt.snapshot_index == 1
        assert nxt.day == 20

    def test_evolution_does_not_mutate_input(self, spec):
        state = initial_state(spec.profile, spec.initial_rng())
        before = dict(state.class_map)
        evolve_state(spec.profile, state, spec.change_model, random.Random(0))
        assert state.class_map == before

    def test_data_churns(self, spec):
        state = initial_state(spec.profile, spec.initial_rng())
        changed = 0
        for seed in range(10):
            nxt = evolve_state(spec.profile, state, spec.change_model, random.Random(seed))
            changed += nxt.texts != state.texts
        assert changed >= 8

    def test_knobs_stay_in_bounds_over_long_walks(self, spec):
        state = initial_state(spec.profile, spec.initial_rng())
        for seed in range(100):
            state = evolve_state(spec.profile, state, spec.change_model, random.Random(seed))
        for name, knob in spec.profile.counts.items():
            assert knob.minimum <= state.counts[name] <= knob.maximum


class TestArchive:
    def test_snapshots_deterministic(self, spec):
        from repro.dom.signatures import subtree_signature

        a = SyntheticArchive(spec, n_snapshots=6)
        b = SyntheticArchive(spec, n_snapshots=6)
        for index in range(6):
            assert subtree_signature(a.snapshot(index).root) == subtree_signature(
                b.snapshot(index).root
            )

    def test_day_cadence(self, spec):
        archive = SyntheticArchive(spec, n_snapshots=5, interval_days=20)
        assert [archive.day(i) for i in range(5)] == [0, 20, 40, 60, 80]

    def test_snapshot_zero_never_broken(self, spec):
        archive = SyntheticArchive(spec, n_snapshots=1)
        assert not archive.is_broken(0)

    def test_targets_tracked_across_snapshots(self, spec):
        archive = SyntheticArchive(spec, n_snapshots=8)
        for index in range(8):
            if archive.is_broken(index):
                continue
            targets = archive.targets_at(index, "director")
            assert len(targets) == 1

    def test_out_of_range_snapshot(self, spec):
        archive = SyntheticArchive(spec, n_snapshots=3)
        with pytest.raises(IndexError):
            archive.state(3)

    def test_pages_actually_change(self):
        spec = make_news_site(1)
        archive = SyntheticArchive(spec, n_snapshots=40)
        from repro.dom.signatures import subtree_signature

        signatures = {
            subtree_signature(archive.snapshot(i).root) for i in (0, 10, 20, 30)
        }
        assert len(signatures) > 1

    def test_lru_cache_bounded(self, spec):
        archive = SyntheticArchive(spec, n_snapshots=30, cache_size=4)
        for index in range(30):
            archive.snapshot(index)
        assert len(archive._doc_cache) <= 4

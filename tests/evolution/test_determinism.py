"""Archive determinism: one seeded RNG root, reproducible snapshots.

Every stochastic call site of the evolution pipeline (initial state,
per-step change process, per-snapshot rendering) derives from the
archive's single root seed, never from the global RNG — so identical
seeds must yield byte-identical snapshot HTML, in any materialization
order, with the process-global ``random`` state perturbed arbitrarily.
"""

import random

import pytest

from repro.dom.serialize import to_html
from repro.evolution import SyntheticArchive
from repro.sites.verticals import VERTICAL_FACTORIES


@pytest.fixture
def spec():
    return VERTICAL_FACTORIES["news"](0)


class TestSameSeedSameHtml:
    def test_two_archives_render_identical_snapshots(self, spec):
        a = SyntheticArchive(spec, n_snapshots=12)
        b = SyntheticArchive(spec, n_snapshots=12)
        for index in range(12):
            assert to_html(a.snapshot(index)) == to_html(b.snapshot(index)), index

    def test_explicit_seed_matches_across_instances(self, spec):
        a = SyntheticArchive(spec, n_snapshots=8, seed=1234)
        b = SyntheticArchive(spec, n_snapshots=8, seed=1234)
        assert [to_html(a.snapshot(i)) for i in range(8)] == [
            to_html(b.snapshot(i)) for i in range(8)
        ]

    def test_global_rng_state_is_irrelevant(self, spec):
        random.seed(1)
        a = [to_html(SyntheticArchive(spec, n_snapshots=4).snapshot(i)) for i in range(4)]
        random.seed(99999)
        random.random()
        b = [to_html(SyntheticArchive(spec, n_snapshots=4).snapshot(i)) for i in range(4)]
        assert a == b

    def test_global_rng_not_consumed(self, spec):
        """Rendering must not draw from (or reseed) the module-level RNG."""
        random.seed(7)
        expected = random.random()
        random.seed(7)
        archive = SyntheticArchive(spec, n_snapshots=6)
        for index in range(6):
            archive.snapshot(index)
        assert random.random() == expected


class TestMaterializationOrder:
    def test_random_access_equals_sequential(self, spec):
        sequential = SyntheticArchive(spec, n_snapshots=10)
        ordered = [to_html(sequential.snapshot(i)) for i in range(10)]
        jumping = SyntheticArchive(spec, n_snapshots=10)
        for index in (9, 3, 7, 0, 5):
            assert to_html(jumping.snapshot(index)) == ordered[index], index

    def test_cache_eviction_rerenders_identically(self, spec):
        archive = SyntheticArchive(spec, n_snapshots=12, cache_size=2)
        first = to_html(archive.snapshot(1))
        for index in range(2, 12):  # evict snapshot 1 from the tiny LRU
            archive.snapshot(index)
        assert to_html(archive.snapshot(1)) == first


class TestSeedOverride:
    def test_default_seed_is_site_seed(self, spec):
        assert SyntheticArchive(spec, n_snapshots=2).seed == spec.seed

    def test_override_changes_trajectory(self, spec):
        base = SyntheticArchive(spec, n_snapshots=10)
        alt = SyntheticArchive(spec, n_snapshots=10, seed=spec.seed + 1)
        assert any(
            to_html(base.snapshot(i)) != to_html(alt.snapshot(i)) for i in range(10)
        )

    def test_override_with_site_seed_is_identity(self, spec):
        base = SyntheticArchive(spec, n_snapshots=6)
        same = SyntheticArchive(spec, n_snapshots=6, seed=spec.seed)
        assert [to_html(base.snapshot(i)) for i in range(6)] == [
            to_html(same.snapshot(i)) for i in range(6)
        ]

"""Unit tests for the stochastic candidate pruner (``search="pruned"``).

The integration-level parity guarantees live in
``tests/integration/test_pruned_parity.py``; here we pin the pruner's
own mechanics — beam size, ordering, counters, determinism, and the
generation-quota narrowing — against hand-built candidates.
"""

import dataclasses

import pytest

from repro.dom import parse_html
from repro.induction.config import InductionConfig, config_with_options
from repro.induction.prune import (
    PRUNED_GENERATION_LIMITS,
    CandidatePruner,
    pruned_generation_config,
)
from repro.xpath.ast import Axis


class _FakeInstance:
    """Just the two attributes the pruner's feature vector reads."""

    def __init__(self, score: float, query_len: int) -> None:
        self.score = score
        self.query = "s" * query_len  # len() is all that matters


class _FakeCandidate:
    def __init__(self, matches, score: float = 1.0, query_len: int = 3) -> None:
        self.matches = matches
        self.instance = _FakeInstance(score, query_len)


@pytest.fixture
def doc():
    spans = "".join(f"<span>s{i}</span>" for i in range(12))
    return parse_html(f"<html><body>{spans}</body></html>")


def _nodes(doc):
    return list(doc.root.iter_find(tag="span"))


def _prune(pruner, candidates, doc, reachable):
    return pruner.prune(candidates, nid=1, tid=2, axis=Axis.CHILD,
                        reachable=reachable, doc=doc)


class TestCandidatePruner:
    def test_small_lists_pass_through(self, doc):
        nodes = _nodes(doc)
        candidates = [_FakeCandidate([n]) for n in nodes[:3]]
        pruner = CandidatePruner(beam_width=5, trials=4, seed=0)
        kept = _prune(pruner, candidates, doc, frozenset())
        assert kept == candidates
        assert pruner.considered == 3
        assert pruner.skipped == 0

    def test_beam_width_and_counters(self, doc):
        nodes = _nodes(doc)
        candidates = [_FakeCandidate([n]) for n in nodes]
        pruner = CandidatePruner(beam_width=4, trials=4, seed=0)
        kept = _prune(pruner, candidates, doc, frozenset())
        assert len(kept) == 4
        assert pruner.considered == len(candidates)
        assert pruner.skipped == len(candidates) - 4

    def test_beam_preserves_generation_order(self, doc):
        nodes = _nodes(doc)
        candidates = [_FakeCandidate([n]) for n in nodes]
        pruner = CandidatePruner(beam_width=5, trials=4, seed=0)
        kept = _prune(pruner, candidates, doc, frozenset())
        positions = [candidates.index(c) for c in kept]
        assert positions == sorted(positions)

    def test_target_hitting_candidates_survive(self, doc):
        """Coverage/precision weights stay positive under every SPSA
        perturbation, so a candidate matching the reachable set exactly
        must always outrank candidates that match nothing."""
        nodes = _nodes(doc)
        reachable = frozenset(doc.node_id(n) for n in nodes[:2])
        noise = [_FakeCandidate([n], score=5.0) for n in nodes[4:]]
        sharp = _FakeCandidate(nodes[:2], score=5.0)
        pruner = CandidatePruner(beam_width=2, trials=4, seed=0)
        kept = _prune(pruner, noise + [sharp], doc, reachable)
        assert sharp in kept

    def test_same_seed_is_deterministic(self, doc):
        nodes = _nodes(doc)
        candidates = [_FakeCandidate([n], score=float(i % 5))
                      for i, n in enumerate(nodes)]
        first = _prune(CandidatePruner(3, 4, seed=9), candidates, doc, frozenset())
        second = _prune(CandidatePruner(3, 4, seed=9), candidates, doc, frozenset())
        assert first == second

    def test_position_feeds_the_rng_seed(self, doc):
        """Different (nid, tid, axis) positions draw from different RNG
        streams — same stream would correlate beams across the DP."""
        nodes = _nodes(doc)
        candidates = [_FakeCandidate([n]) for n in nodes]
        pruner = CandidatePruner(beam_width=3, trials=4, seed=0)
        a = pruner.prune(candidates, nid=1, tid=1, axis=Axis.CHILD,
                         reachable=frozenset(), doc=doc)
        b = pruner.prune(candidates, nid=1, tid=1, axis=Axis.CHILD,
                         reachable=frozenset(), doc=doc)
        assert a == b  # identical position → identical beam

    @pytest.mark.parametrize("kwargs", [
        {"beam_width": 0, "trials": 4, "seed": 0},
        {"beam_width": 5, "trials": 0, "seed": 0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CandidatePruner(**kwargs)


class TestPrunedGenerationConfig:
    def test_ceilings_applied(self):
        narrowed = pruned_generation_config(InductionConfig())
        for field_name, ceiling in PRUNED_GENERATION_LIMITS.items():
            assert getattr(narrowed, field_name) == ceiling

    def test_stricter_user_quota_wins(self):
        config = InductionConfig(max_target_spines=2, max_node_patterns=5)
        narrowed = pruned_generation_config(config)
        assert narrowed.max_target_spines == 2
        assert narrowed.max_node_patterns == 5

    def test_other_fields_untouched(self):
        config = InductionConfig(k=7, beta=0.8, search="pruned")
        narrowed = pruned_generation_config(config)
        assert narrowed.k == 7
        assert narrowed.beta == 0.8
        assert narrowed.search == "pruned"


class TestConfigOptions:
    def test_options_map_onto_fields(self):
        config = config_with_options(
            InductionConfig(),
            {"search": "pruned", "beam_width": 6, "prune_seed": 3},
        )
        assert config.search == "pruned"
        assert config.beam_width == 6
        assert config.prune_seed == 3

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown induction options"):
            config_with_options(InductionConfig(), {"beem_width": 6})

    def test_empty_options_return_config_unchanged(self):
        config = InductionConfig()
        assert config_with_options(config, {}) is config

    def test_validation_still_applies(self):
        with pytest.raises(ValueError, match="search must be one of"):
            config_with_options(InductionConfig(), {"search": "greedy"})

    @pytest.mark.parametrize(
        "key,bad",
        [
            ("beam_width", 2.5),
            ("beam_width", True),
            ("prune_trials", "4"),
            ("prune_seed", None),
            ("fold_workers", 2.0),
            ("search", 1),
            ("diversity", "0.5"),
        ],
    )
    def test_wrongly_typed_options_rejected(self, key, bad):
        """Malformed wire values must fail here (FacadeError/422 on the
        wire), not as a 500 deep inside the pruner or the process pool."""
        with pytest.raises(ValueError, match=f"induction option '{key}'"):
            config_with_options(InductionConfig(), {key: bad})

    def test_int_diversity_coerced_to_float(self):
        config = config_with_options(InductionConfig(), {"diversity": 1})
        assert config.diversity == 1.0
        assert isinstance(config.diversity, float)

    def test_config_stays_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            InductionConfig().search = "pruned"

"""Tests for the future-work extensions: relative wrappers and ensembles."""

import pytest

from repro.dom import parse_html
from repro.induction import WrapperInducer
from repro.induction.ensemble import (
    EnsembleWrapper,
    build_ensemble,
    feature_signature,
    fragile_signature,
    select_diverse,
)
from repro.induction.relative import RecordExample, RelativeWrapperInducer
from repro.scoring.ranking import QueryInstance
from repro.xpath import parse_query
from repro.xpath.compile import evaluate_compiled


@pytest.fixture
def product_doc():
    items = "".join(
        f'<div class="item"><h2><a href="/p/{i}">Product {i}</a></h2>'
        f'<span class="price">${i}9.99</span>'
        f'<span class="stock">in stock</span></div>'
        for i in range(5)
    )
    return parse_html(f"<html><body><div id='results'>{items}</div></body></html>")


class TestRelativeWrappers:
    def test_extracts_records(self, product_doc):
        anchors = list(product_doc.root.iter_find(tag="div", class_="item"))
        examples = [
            RecordExample(
                anchor=anchor,
                fields={
                    "title": anchor.find(tag="a"),
                    "price": anchor.find(tag="span", class_="price"),
                },
            )
            for anchor in anchors[:4]
        ]
        wrapper = RelativeWrapperInducer(k=10).induce(product_doc, examples)
        records = wrapper.extract_values(product_doc)
        assert len(records) == 5
        assert records[0]["title"] == "Product 0"
        assert records[3]["price"] == "$39.99"

    def test_missing_fields_are_none(self, product_doc):
        anchors = list(product_doc.root.iter_find(tag="div", class_="item"))
        examples = [
            RecordExample(anchor=anchor, fields={"title": anchor.find(tag="a")})
            for anchor in anchors
        ]
        wrapper = RelativeWrapperInducer(k=10).induce(product_doc, examples)
        # remove one title, re-extract
        victim = anchors[2].find(tag="h2")
        anchors[2].remove_child(victim)
        product_doc.invalidate()
        records = wrapper.extract(product_doc)
        assert any(r["title"] is None for r in records)

    def test_field_names_must_match(self, product_doc):
        anchors = list(product_doc.root.iter_find(tag="div", class_="item"))
        examples = [
            RecordExample(anchor=anchors[0], fields={"a": anchors[0].find(tag="a")}),
            RecordExample(anchor=anchors[1], fields={"b": anchors[1].find(tag="a")}),
        ]
        with pytest.raises(ValueError):
            RelativeWrapperInducer().induce(product_doc, examples)

    def test_requires_examples(self, product_doc):
        with pytest.raises(ValueError):
            RelativeWrapperInducer().induce(product_doc, [])


class TestFeatureSignature:
    def test_attribute_and_text_features(self):
        q = parse_query('descendant::div[@id="x"]/descendant::p[contains(.,"Hi")]')
        signature = feature_signature(q)
        assert 'attr:id=x' in signature
        assert "text:Hi" in signature
        assert "tag:div" in signature

    def test_positional_feature(self):
        assert "positional" in feature_signature(parse_query("descendant::li[3]"))

    def test_disjoint_signatures(self):
        a = feature_signature(parse_query('descendant::span[@itemprop="name"]'))
        b = feature_signature(parse_query('descendant::div[@class="credit"]/child::a'))
        assert not (a & b)


class TestEnsemble:
    def test_select_diverse_prefers_disjoint(self, imdb_doc):
        target = imdb_doc.find(tag="span")
        result = WrapperInducer(k=10).induce_one(imdb_doc, [target])
        members = select_diverse(result, size=3)
        assert 1 <= len(members) <= 3
        signatures = [feature_signature(m) for m in members]
        if len(signatures) >= 2:
            assert not (signatures[0] & signatures[1])

    def test_majority_vote_selects_target(self, imdb_doc):
        target = imdb_doc.find(tag="span")
        result = WrapperInducer(k=10).induce_one(imdb_doc, [target])
        ensemble = build_ensemble(result, size=3)
        assert ensemble.select(imdb_doc) == [target]

    def test_vote_survives_one_broken_member(self, imdb_doc):
        target = imdb_doc.find(tag="span")
        good = parse_query('descendant::span[@itemprop="name"][1]')
        also_good = parse_query("descendant::a/descendant::span")
        broken = parse_query('descendant::span[@class="no-longer-exists"]')
        ensemble = EnsembleWrapper((good, also_good, broken))
        assert ensemble.select(imdb_doc) == [target]

    def test_quorum_blocks_minority(self, imdb_doc):
        rogue = parse_query("descendant::h1")
        good = parse_query('descendant::span[@itemprop="name"][1]')
        also_good = parse_query("descendant::a/descendant::span")
        ensemble = EnsembleWrapper((good, also_good, rogue))
        selected = ensemble.select(imdb_doc)
        assert imdb_doc.find(tag="h1") not in selected

    def test_empty_members_rejected(self):
        with pytest.raises(ValueError):
            EnsembleWrapper(())


def _instance(text: str) -> QueryInstance:
    return QueryInstance(parse_query(text), tp=1, fp=0, fn=0, score=1.0)


class TestFragileSignature:
    def test_values_collapse(self):
        a = fragile_signature(parse_query('descendant::span[@class="big"]'))
        b = fragile_signature(parse_query('descendant::div[@class="row"]'))
        assert a == b == frozenset({"attr:class"})

    def test_tags_are_not_fragile(self):
        assert fragile_signature(parse_query("descendant::span")) == frozenset()

    def test_distinct_failure_modes(self):
        positional = fragile_signature(parse_query("descendant::li[2]"))
        attribute = fragile_signature(parse_query('descendant::a[@href]'))
        assert positional == frozenset({"positional"})
        assert attribute == frozenset({"attr:href"})
        assert not (positional & attribute)


class TestDiversityEnsemble:
    """A class reskin must kill fewer members of a diversity-penalized
    committee than of the accuracy-only one (the "Diversified Multiple
    Trees" satellite)."""

    #: Ranked as induction would: the class-anchored queries score best,
    #: the independent anchors (itemprop, position) trail them.
    INSTANCES = [
        _instance('descendant::span[@class="price-big"]'),
        _instance('descendant::div[@class="row"]/child::span'),
        _instance('descendant::span[@itemprop="price"]'),
        _instance("descendant::li[2]/descendant::span"),
    ]

    PAGE = (
        "<html><body><ul><li>intro</li>"
        '<li><div class="{row}"><span class="{big}" itemprop="price">$9</span>'
        "</div></li></ul></body></html>"
    )

    def docs(self):
        original = parse_html(self.PAGE.format(row="row", big="price-big"))
        reskinned = parse_html(self.PAGE.format(row="r-v2", big="p-v2"))
        return original, reskinned

    def surviving(self, members, doc):
        target = doc.find(tag="span")
        return [
            member
            for member in members
            if list(evaluate_compiled(member, doc.root, doc)) == [target]
        ]

    def test_all_members_select_on_the_original_page(self):
        original, _ = self.docs()
        for mode in (None, 3.0):
            members = select_diverse(self.INSTANCES, size=3, diversity=mode)
            assert len(self.surviving(members, original)) == 3

    def test_class_rename_kills_fewer_diverse_members(self):
        _, reskinned = self.docs()
        accuracy_only = select_diverse(self.INSTANCES, size=3)
        diverse = select_diverse(self.INSTANCES, size=3, diversity=3.0)
        broken_accuracy = 3 - len(self.surviving(accuracy_only, reskinned))
        broken_diverse = 3 - len(self.surviving(diverse, reskinned))
        assert broken_diverse < broken_accuracy

    def test_diverse_vote_survives_the_reskin(self):
        _, reskinned = self.docs()
        diverse = build_ensemble(self.INSTANCES, size=3, diversity=3.0)
        accuracy_only = build_ensemble(self.INSTANCES, size=3)
        target = reskinned.find(tag="span")
        assert diverse.select(reskinned) == [target]
        assert accuracy_only.select(reskinned) != [target]

    def test_diversity_none_is_the_legacy_selection(self):
        assert select_diverse(self.INSTANCES, size=3, diversity=None) == (
            select_diverse(self.INSTANCES, size=3)
        )

    def test_diversity_zero_is_pure_rank_order(self):
        members = select_diverse(self.INSTANCES, size=3, diversity=0.0)
        assert members == [instance.query for instance in self.INSTANCES[:3]]

    def test_negative_diversity_rejected(self):
        with pytest.raises(ValueError):
            select_diverse(self.INSTANCES, size=3, diversity=-1.0)

"""Focused tests for Algorithm 2 internals (tables, pruning, spine bound)."""

import pytest

from repro.dom import parse_html
from repro.induction.config import InductionConfig
from repro.induction.induce_path import (
    PathInductionContext,
    _spine_targets,
    induce_path,
    init_tables,
)
from repro.scoring.params import ScoringParams
from repro.scoring.ranking import rank_key
from repro.xpath.ast import Axis, EMPTY_QUERY


class TestInitTables:
    def test_epsilon_seeded_at_targets(self, imdb_doc):
        targets = [imdb_doc.find(tag="h1")]
        best = init_tables(imdb_doc, targets, k=5, beta=0.5)
        table = best[imdb_doc.node_id(targets[0])]
        assert table.best().query == EMPTY_QUERY
        assert table.best().tp == 1


class TestSpineTargets:
    def test_all_when_few(self):
        targets = list(range(5))
        assert _spine_targets(targets, 10) == targets

    def test_bounded_and_keeps_ends(self):
        targets = list(range(100))
        chosen = _spine_targets(targets, 12)
        assert len(chosen) <= 12
        assert chosen[0] == 0
        assert chosen[-1] == 99

    def test_spread_is_monotone(self):
        chosen = _spine_targets(list(range(50)), 7)
        assert chosen == sorted(chosen)

    def test_zero_limit_means_unbounded(self):
        targets = list(range(30))
        assert _spine_targets(targets, 0) == targets


class TestInducePath:
    def test_returns_best_table_for_context(self, imdb_doc):
        config = InductionConfig()
        ctx = PathInductionContext.for_doc(imdb_doc, config, ScoringParams())
        targets = [imdb_doc.find(tag="h1")]
        best = init_tables(imdb_doc, targets, config.k, config.beta)
        table = induce_path(ctx, imdb_doc.root, targets, Axis.CHILD, best, {})
        assert len(table) > 0
        keys = [rank_key(i) for i in table.items]
        assert keys == sorted(keys)

    def test_intermediate_tables_populated(self, imdb_doc):
        config = InductionConfig()
        ctx = PathInductionContext.for_doc(imdb_doc, config, ScoringParams())
        span = imdb_doc.find(tag="span")
        best = init_tables(imdb_doc, [span], config.k, config.beta)
        induce_path(ctx, imdb_doc.root, [span], Axis.CHILD, best, {})
        main = imdb_doc.find(id="main")
        assert imdb_doc.node_id(main) in best
        assert len(best[imdb_doc.node_id(main)]) > 0

    def test_step_pattern_cache_reused(self, imdb_doc):
        config = InductionConfig()
        ctx = PathInductionContext.for_doc(imdb_doc, config, ScoringParams())
        tds = list(imdb_doc.root.iter_find(tag="td", class_="name"))
        best = init_tables(imdb_doc, tds, config.k, config.beta)
        induce_path(ctx, imdb_doc.root, tds, Axis.CHILD, best, {})
        assert len(ctx.step_cache) > 0

    def test_best_entries_are_accurate_for_single_target(self, imdb_doc):
        config = InductionConfig()
        ctx = PathInductionContext.for_doc(imdb_doc, config, ScoringParams())
        h1 = imdb_doc.find(tag="h1")
        best = init_tables(imdb_doc, [h1], config.k, config.beta)
        table = induce_path(ctx, imdb_doc.root, [h1], Axis.CHILD, best, {})
        top = table.best()
        assert top.fp == 0 and top.fn == 0

"""Tests for candidate node-pattern generation."""

from repro.dom import parse_html
from repro.dom.node import TextNode
from repro.induction.config import InductionConfig
from repro.induction.node_pattern import node_patterns
from repro.scoring import ScoringParams
from repro.xpath.ast import (
    AttrSubject,
    AttributePredicate,
    StringPredicate,
    TextSubject,
)

CONFIG = InductionConfig()
PARAMS = ScoringParams()


def patterns_for(html, **find):
    doc = parse_html(html)
    node = doc.find(**find)
    return doc, node, node_patterns(node, doc, CONFIG, PARAMS)


def predicate_strings(patterns):
    return {str(p) for pat in patterns for p in pat.predicates}


class TestNodeTests:
    def test_element_gets_node_tag_and_star(self):
        _, _, pats = patterns_for("<div id='x'>t</div>", tag="div")
        kinds = {(p.nodetest.kind, p.nodetest.name) for p in pats}
        assert ("node", None) in kinds
        assert ("name", "div") in kinds
        assert ("any", None) in kinds

    def test_predicates_attach_to_specific_tests_only(self):
        """Paper's nodePattern listing: node() bare, predicates on the tag."""
        _, _, pats = patterns_for("<div id='x'>t</div>", tag="div")
        for pattern in pats:
            if pattern.nodetest.kind in ("node", "any"):
                assert not pattern.predicates

    def test_text_node_patterns(self):
        doc = parse_html("<p>hello</p>")
        text = doc.find(tag="p").children[0]
        pats = node_patterns(text, doc, CONFIG, PARAMS)
        kinds = {p.nodetest.kind for p in pats}
        assert kinds <= {"text", "node"}

    def test_synthetic_root_has_no_patterns(self):
        doc = parse_html("<p>x</p>")
        assert node_patterns(doc.root, doc, CONFIG, PARAMS) == []


class TestAttributePredicates:
    def test_equality_contains_and_existence(self):
        _, _, pats = patterns_for('<div class="main content">t</div>', tag="div")
        preds = predicate_strings(pats)
        assert '[@class="main content"]' in preds
        assert '[contains(@class,"main")]' in preds
        assert '[contains(@class,"content")]' in preds
        assert "[@class]" in preds

    def test_style_attribute_skipped(self):
        _, _, pats = patterns_for('<div style="color:red">t</div>', tag="div")
        assert not any("style" in p for p in predicate_strings(pats))

    def test_long_values_have_no_equality(self):
        value = "x" * 200
        _, _, pats = patterns_for(f'<div data-big="{value}">t</div>', tag="div")
        assert f'[@data-big="{value}"]' not in predicate_strings(pats)


class TestTextPredicates:
    def test_label_starts_with(self):
        _, _, pats = patterns_for("<div><h4>Director:</h4><span>Martin</span></div>", tag="div")
        preds = predicate_strings(pats)
        assert '[starts-with(.,"Director:")]' in preds

    def test_full_text_equality_when_short(self):
        _, _, pats = patterns_for("<h4>Director:</h4>", tag="h4")
        assert '[.="Director:"]' in predicate_strings(pats)

    def test_volatile_text_excluded(self):
        doc = parse_html("<div><h4>Director:</h4><span>Martin</span></div>")
        span_text = doc.find(tag="span").children[0]
        span_text.meta["volatile"] = True
        div = doc.find(tag="div")
        pats = node_patterns(div, doc, CONFIG, PARAMS)
        values = {
            p.value
            for pat in pats
            for p in pat.predicates
            if isinstance(p, StringPredicate) and isinstance(p.subject, TextSubject)
        }
        assert "Martin" not in values
        assert not any("Martin" in v for v in values)

    def test_text_predicates_disabled_by_config(self):
        doc = parse_html("<h4>Director:</h4>")
        config = InductionConfig(allow_text_predicates=False)
        pats = node_patterns(doc.find(tag="h4"), doc, config, PARAMS)
        assert not any(
            isinstance(p, StringPredicate) and isinstance(p.subject, TextSubject)
            for pat in pats
            for p in pat.predicates
        )


class TestCapsAndOrdering:
    def test_at_most_one_predicate_each(self):
        _, _, pats = patterns_for('<div id="a" class="b">Director: x</div>', tag="div")
        assert all(len(p.predicates) <= 1 for p in pats)

    def test_capped_by_config(self):
        config = InductionConfig(max_node_patterns=5)
        doc = parse_html('<div id="a" class="b c d" title="t">Director: x</div>')
        pats = node_patterns(doc.find(tag="div"), doc, config, PARAMS)
        assert len(pats) <= 5

    def test_cheapest_first(self):
        _, _, pats = patterns_for('<div id="a">t</div>', tag="div")
        from repro.scoring.score import score_nodetest, score_predicate

        def cost(p):
            return score_nodetest(p.nodetest, PARAMS) + sum(
                score_predicate(x, PARAMS) for x in p.predicates
            )

        costs = [cost(p) for p in pats]
        assert costs == sorted(costs)

"""End-to-end induction tests (Algorithms 2 and 3)."""

import pytest

from repro.dom import parse_html
from repro.dom.node import TextNode
from repro.induction import InductionConfig, QuerySample, WrapperInducer, induce
from repro.xpath import evaluate, parse_query
from repro.xpath.fragment import is_ds_query


def mark_volatile(doc, tag):
    for element in doc.root.iter_find(tag=tag):
        for node in element.descendants():
            if isinstance(node, TextNode):
                node.meta["volatile"] = True


class TestSingleTarget:
    def test_accurate_top_result(self, imdb_doc):
        target = imdb_doc.find(tag="span")
        result = WrapperInducer(k=10).induce_one(imdb_doc, [target])
        assert result.best is not None
        assert result.best.is_accurate
        assert evaluate(result.best.query, imdb_doc.root, imdb_doc) == [target]

    def test_all_results_are_ds_queries(self, imdb_doc):
        target = imdb_doc.find(tag="span")
        result = WrapperInducer(k=10).induce_one(imdb_doc, [target])
        for instance in result:
            assert is_ds_query(instance.query), str(instance.query)

    def test_semantic_attribute_preferred_over_volatile_text(self, imdb_doc):
        mark_volatile(imdb_doc, "span")
        target = imdb_doc.find(tag="span")
        result = WrapperInducer(k=10).induce_one(imdb_doc, [target])
        assert "Martin" not in str(result.best.query)

    def test_search_input_wrapper(self, imdb_doc):
        target = imdb_doc.find(tag="input")
        result = WrapperInducer(k=10).induce_one(imdb_doc, [target])
        assert result.best.is_accurate
        # the paper's group (a) example: descendant::input[@name="q"]-style
        assert "input" in str(result.best.query) or "@" in str(result.best.query)

    def test_ranking_is_monotone(self, imdb_doc):
        from repro.scoring.ranking import rank_key

        target = imdb_doc.find(tag="h1")
        result = WrapperInducer(k=10).induce_one(imdb_doc, [target])
        keys = [rank_key(i) for i in result]
        assert keys == sorted(keys)

    def test_context_cannot_be_target(self, imdb_doc):
        with pytest.raises(ValueError):
            WrapperInducer().induce_one(imdb_doc, [imdb_doc.root])


class TestMultiTarget:
    def test_list_selection(self, list_doc):
        targets = list(list_doc.root.iter_find(tag="a", class_="hpCH"))
        result = WrapperInducer(k=10).induce_one(list_doc, targets)
        assert result.best.is_accurate
        matches = evaluate(result.best.query, list_doc.root, list_doc)
        assert {id(m) for m in matches} == {id(t) for t in targets}

    def test_sibling_list_after_header(self):
        doc = parse_html(
            "<html><body><table>"
            "<tr class='head'><td>News and Latest Reviews</td></tr>"
            + "".join(f"<tr><td>item{i}</td></tr>" for i in range(7))
            + "</table></body></html>"
        )
        targets = [tr for tr in doc.root.iter_find(tag="tr")][1:]
        result = WrapperInducer(k=10).induce_one(doc, targets)
        assert result.best.is_accurate
        assert "following-sibling" in str(result.best.query)

    def test_cast_table(self, imdb_doc):
        targets = list(imdb_doc.root.iter_find(tag="td", class_="name"))
        result = WrapperInducer(k=10).induce_one(imdb_doc, [t for t in targets])
        assert result.best.is_accurate


class TestTwoDirectional:
    def test_context_below_targets(self, imdb_doc):
        """Context is the h1; targets are the cast cells — requires an
        upward path to the LCA and a downward tail."""
        context = imdb_doc.find(tag="h1")
        targets = list(imdb_doc.root.iter_find(tag="td", class_="name"))
        result = induce([QuerySample(imdb_doc, targets, context=context)])
        assert result.best is not None
        matches = evaluate(result.best.query, context, imdb_doc)
        assert {id(m) for m in matches} == {id(t) for t in targets}

    def test_relative_wrapper_from_label(self, imdb_doc):
        """From the Director h4 to the director span (different subtree)."""
        context = imdb_doc.find(tag="h4")
        target = imdb_doc.find(tag="span")
        result = induce([QuerySample(imdb_doc, [target], context=context)])
        assert result.best is not None
        assert evaluate(result.best.query, context, imdb_doc) == [target]


class TestMultiSample:
    def test_aggregation_over_two_pages(self):
        pages = []
        for name in ("Martin Scorsese", "Sofia Coppola"):
            doc = parse_html(
                "<html><body><div class='promo'>x</div>"
                f"<div class='credit'><h4>Director:</h4><span itemprop='name'>{name}</span></div>"
                "</body></html>"
            )
            mark_volatile(doc, "span")
            pages.append(QuerySample(doc, [doc.find(tag="span")]))
        result = induce(pages)
        assert result.best is not None
        assert result.best.tp == 2 and result.best.fp == 0 and result.best.fn == 0
        for sample in pages:
            out = evaluate(result.best.query, sample.doc.root, sample.doc)
            assert out == list(sample.targets)

    def test_noisy_sample_generalizes(self):
        """One sample annotates 3 of 4 list items; the induced wrapper
        should still select all four (noise resistance by design)."""
        doc = parse_html(
            "<html><body><ul>"
            + "".join(f"<li class='item'>v{i}</li>" for i in range(4))
            + "</ul></body></html>"
        )
        items = list(doc.root.iter_find(tag="li"))
        result = WrapperInducer(k=10).induce_one(doc, items[:3])
        matches = evaluate(result.best.query, doc.root, doc)
        assert {id(m) for m in matches} == {id(t) for t in items}

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            induce([])


class TestConfig:
    def test_k_controls_result_count(self, imdb_doc):
        target = imdb_doc.find(tag="h1")
        small = WrapperInducer(k=3).induce_one(imdb_doc, [target])
        large = WrapperInducer(k=10).induce_one(imdb_doc, [target])
        assert len(small) <= 3
        assert len(large) <= 10
        assert len(large) >= len(small)

    def test_results_deterministic(self, imdb_doc):
        target = imdb_doc.find(tag="span")
        first = WrapperInducer(k=10).induce_one(imdb_doc, [target])
        second = WrapperInducer(k=10).induce_one(imdb_doc, [target])
        assert [str(i.query) for i in first] == [str(i.query) for i in second]

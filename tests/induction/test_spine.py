"""Tests for spines, base axes, and reachability."""

import pytest

from repro.dom import E, document, parse_html
from repro.induction.spine import (
    base_axis_between,
    common_base_axis,
    is_ancestor_of,
    lca,
    spine,
    targets_reachable,
)
from repro.xpath.ast import Axis


@pytest.fixture
def doc():
    return parse_html(
        "<html><body><div id='a'><p id='p1'>1</p><p id='p2'>2</p>"
        "<span id='s'>x</span></div><div id='b'><em id='e'>y</em></div></body></html>"
    )


class TestBaseAxis:
    def test_descendant_is_child_axis(self, doc):
        body = doc.find(tag="body")
        p = doc.find(id="p1")
        assert base_axis_between(body, p) is Axis.CHILD

    def test_ancestor_is_parent_axis(self, doc):
        body = doc.find(tag="body")
        p = doc.find(id="p1")
        assert base_axis_between(p, body) is Axis.PARENT

    def test_sibling_axes(self, doc):
        p1, p2 = doc.find(id="p1"), doc.find(id="p2")
        assert base_axis_between(p1, p2) is Axis.FOLLOWING_SIBLING
        assert base_axis_between(p2, p1) is Axis.PRECEDING_SIBLING

    def test_unrelated_nodes(self, doc):
        assert base_axis_between(doc.find(id="p1"), doc.find(id="e")) is None

    def test_same_node(self, doc):
        node = doc.find(id="p1")
        assert base_axis_between(node, node) is None


class TestCommonBaseAxis:
    def test_all_descendants(self, doc):
        body = doc.find(tag="body")
        targets = [doc.find(id="p1"), doc.find(id="e")]
        assert common_base_axis(body, targets) is Axis.CHILD

    def test_mixed_axes_none(self, doc):
        p1 = doc.find(id="p1")
        targets = [doc.find(id="p2"), doc.find(tag="body")]
        assert common_base_axis(p1, targets) is None

    def test_all_siblings(self, doc):
        p1 = doc.find(id="p1")
        targets = [doc.find(id="p2"), doc.find(id="s")]
        assert common_base_axis(p1, targets) is Axis.FOLLOWING_SIBLING


class TestSpine:
    def test_downward_spine_order(self, doc):
        body = doc.find(tag="body")
        p1 = doc.find(id="p1")
        path = spine(body, p1, Axis.CHILD)
        assert path[0] is body
        assert path[-1] is p1
        assert [getattr(n, "tag", "?") for n in path] == ["body", "div", "p"]

    def test_upward_spine(self, doc):
        body = doc.find(tag="body")
        p1 = doc.find(id="p1")
        path = spine(p1, body, Axis.PARENT)
        assert path[0] is p1 and path[-1] is body

    def test_sibling_spine_includes_between_nodes(self, doc):
        p1, s = doc.find(id="p1"), doc.find(id="s")
        path = spine(p1, s, Axis.FOLLOWING_SIBLING)
        assert [n.attrs.get("id") for n in path] == ["p1", "p2", "s"]

    def test_preceding_spine_reversed(self, doc):
        p1, s = doc.find(id="p1"), doc.find(id="s")
        path = spine(s, p1, Axis.PRECEDING_SIBLING)
        assert [n.attrs.get("id") for n in path] == ["s", "p2", "p1"]

    def test_wrong_direction_raises(self, doc):
        with pytest.raises(ValueError):
            spine(doc.find(id="p1"), doc.find(tag="body"), Axis.CHILD)


class TestLca:
    def test_siblings(self, doc):
        assert lca([doc.find(id="p1"), doc.find(id="p2")]) is doc.find(id="a")

    def test_across_divs(self, doc):
        assert lca([doc.find(id="p1"), doc.find(id="e")]) is doc.find(tag="body")

    def test_ancestor_is_its_own_lca(self, doc):
        a = doc.find(id="a")
        assert lca([a, doc.find(id="p1")]) is a

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            lca([])


class TestTargetsReachable:
    def test_child_axis(self, doc):
        div = doc.find(id="a")
        targets = [doc.find(id="p1"), doc.find(id="e")]
        reachable = targets_reachable(div, targets, Axis.CHILD, doc)
        assert reachable == frozenset({doc.node_id(targets[0])})


class TestIsAncestorAfterInvalidate:
    def test_moved_node_reports_new_ancestry(self):
        """Regression: the interval fast path must not answer from a
        stale index after Document.invalidate()."""
        c = E("c")
        a = E("a", c)
        b = E("b")
        doc = document(E("html", a, b))
        doc.index  # build + stamp under the old shape
        assert is_ancestor_of(a, c) and not is_ancestor_of(b, c)
        a.remove_child(c)
        b.append_child(c)
        doc.invalidate()
        assert not is_ancestor_of(a, c)
        assert is_ancestor_of(b, c)
        doc.index  # rebuilt: fast path live again under fresh stamps
        assert not is_ancestor_of(a, c)
        assert is_ancestor_of(b, c)

"""Tests for Algorithm 1 (stepPattern)."""

import pytest

from repro.dom import parse_html
from repro.induction.config import InductionConfig
from repro.induction.step_pattern import step_patterns
from repro.scoring import Scorer, ScoringParams
from repro.xpath.ast import Axis

PARAMS = ScoringParams()


def run_step_patterns(doc, context, target, axis, config=None):
    config = config or InductionConfig()
    return step_patterns(
        context, target, axis, config.k, doc, config, PARAMS, Scorer(PARAMS)
    )


@pytest.fixture
def nested_doc():
    return parse_html(
        '<html><body><div class="content"><div id="main">'
        '<em class="highlight">The Target</em></div></div></body></html>'
    )


class TestDirectPatterns:
    def test_contract_every_candidate_matches_target(self, nested_doc):
        body = nested_doc.find(tag="body")
        em = nested_doc.find(tag="em")
        for candidate in run_step_patterns(nested_doc, body, em, Axis.CHILD):
            assert any(m is em for m in candidate.matches)

    def test_descendant_and_child_variants(self, nested_doc):
        main = nested_doc.find(id="main")
        em = nested_doc.find(tag="em")
        queries = {str(c.query) for c in run_step_patterns(nested_doc, main, em, Axis.CHILD)}
        assert "descendant::em" in queries
        assert "child::em" in queries

    def test_paper_example_patterns(self, nested_doc):
        """Sec. 5's worked example: patterns from the lower div to the em
        include a class-predicated test on the em."""
        main = nested_doc.find(id="main")
        em = nested_doc.find(tag="em")
        queries = {str(c.query) for c in run_step_patterns(nested_doc, main, em, Axis.CHILD)}
        assert any('[@class="highlight"]' in q for q in queries)

    def test_no_child_variant_when_not_direct(self, nested_doc):
        body = nested_doc.find(tag="body")
        em = nested_doc.find(tag="em")
        queries = {str(c.query) for c in run_step_patterns(nested_doc, body, em, Axis.CHILD)}
        assert "child::em" not in queries
        assert "descendant::em" in queries

    def test_parent_axis_patterns(self, nested_doc):
        em = nested_doc.find(tag="em")
        main = nested_doc.find(id="main")
        queries = {str(c.query) for c in run_step_patterns(nested_doc, em, main, Axis.PARENT)}
        assert "parent::div" in queries or 'parent::node()[@id="main"]' in queries
        assert any(q.startswith("ancestor::") for q in queries)


class TestPositionalRefinement:
    def test_ambiguous_pattern_gets_position(self, list_doc):
        root = list_doc.root
        li2 = list_doc.find(tag="ul").element_children()[1]
        queries = {str(c.query) for c in run_step_patterns(list_doc, root, li2, Axis.CHILD)}
        assert "descendant::li[2]" in queries
        assert "descendant::li[last()-2]" in queries

    def test_unrefined_pattern_kept_for_lists(self, list_doc):
        root = list_doc.root
        li2 = list_doc.find(tag="ul").element_children()[1]
        queries = {str(c.query) for c in run_step_patterns(list_doc, root, li2, Axis.CHILD)}
        assert "descendant::li" in queries  # over-matching piece must survive

    def test_positional_disabled(self, list_doc):
        config = InductionConfig(enable_positional=False)
        root = list_doc.root
        li2 = list_doc.find(tag="ul").element_children()[1]
        queries = {
            str(c.query)
            for c in run_step_patterns(list_doc, root, li2, Axis.CHILD, config)
        }
        assert all("[2]" not in q and "last()" not in q for q in queries)


class TestSidewaysChecks:
    def test_sibling_anchor_generated(self, list_doc):
        """The header preceding the ul anchors it via following-sibling."""
        root = list_doc.root
        ul = list_doc.find(tag="ul")
        queries = {str(c.query) for c in run_step_patterns(list_doc, root, ul, Axis.CHILD)}
        assert any("following-sibling" in q for q in queries)

    def test_sideways_disabled(self, list_doc):
        config = InductionConfig(enable_sideways=False)
        root = list_doc.root
        ul = list_doc.find(tag="ul")
        queries = {
            str(c.query) for c in run_step_patterns(list_doc, root, ul, Axis.CHILD, config)
        }
        assert all("following-sibling" not in q for q in queries)

    def test_sideways_only_for_child_axis(self, list_doc):
        ul = list_doc.find(tag="ul")
        panel = list_doc.find(class_="widePanel")
        queries = {str(c.query) for c in run_step_patterns(list_doc, ul, panel, Axis.PARENT)}
        assert all("sibling" not in q for q in queries)


class TestSelection:
    def test_candidates_deduped(self, list_doc):
        root = list_doc.root
        ul = list_doc.find(tag="ul")
        candidates = run_step_patterns(list_doc, root, ul, Axis.CHILD)
        queries = [c.query for c in candidates]
        assert len(queries) == len(set(queries))

    def test_bounded_output(self, list_doc):
        config = InductionConfig(k=4)
        root = list_doc.root
        ul = list_doc.find(tag="ul")
        candidates = run_step_patterns(list_doc, root, ul, Axis.CHILD, config)
        # at most k by-rank + k by-score
        assert len(candidates) <= 2 * (4 + 4) + 8

"""Parallel induction folds: pooled output must be byte-identical to serial.

``fold_workers >= 2`` fans Algorithm 3's per-sample folds and the
candidate aggregation out over the shared process pool; everything a
caller can observe (the ranked instances, the export payload) must be
exactly what the serial path produces.  These tests also pin the
fallback ladder: single samples, ``fold_workers < 2``, and samples that
cannot round-trip through :class:`StoredSample` all run serial.
"""

import pytest

from repro.dom import parse_html
from repro.induction import WrapperInducer
from repro.induction.config import InductionConfig
from repro.induction.parallel import (
    close_shared_pools,
    induce_pooled,
    shared_induction_pool,
)
from repro.induction.samples import QuerySample


def _snapshot(prices, extra_class="stock"):
    rows = "".join(
        f'<div class="item"><a href="/p/{i}">Item {i}</a>'
        f'<span class="price">{price}</span>'
        f'<span class="{extra_class}">yes</span></div>'
        for i, price in enumerate(prices)
    )
    return parse_html(f"<html><body><div id='list'>{rows}</div></body></html>")


def _sample(doc):
    targets = list(doc.root.iter_find(tag="span", class_="price"))
    return QuerySample(doc=doc, targets=targets)


@pytest.fixture
def samples():
    return [
        _sample(_snapshot(["$1", "$2", "$3"])),
        _sample(_snapshot(["$4", "$5", "$6", "$7"])),
        _sample(_snapshot(["$8", "$9"], extra_class="avail")),
    ]


class TestPooledParity:
    def test_pooled_export_matches_serial(self, samples):
        serial = WrapperInducer(k=10).induce(samples)
        pooled = WrapperInducer(
            k=10, config=InductionConfig(fold_workers=2)
        ).induce(samples)
        assert pooled.export() == serial.export()
        assert serial.stats is not None and not serial.stats.pooled
        assert pooled.stats is not None and pooled.stats.pooled

    def test_pooled_pruned_matches_serial_pruned(self, samples):
        serial = WrapperInducer(
            k=10, config=InductionConfig(search="pruned")
        ).induce(samples)
        pooled = WrapperInducer(
            k=10, config=InductionConfig(search="pruned", fold_workers=2)
        ).induce(samples)
        assert pooled.export() == serial.export()
        assert pooled.stats.search == "pruned"


class TestSerialFallbacks:
    def test_single_sample_stays_serial(self, samples):
        result = WrapperInducer(
            k=10, config=InductionConfig(fold_workers=2)
        ).induce(samples[:1])
        assert result.stats is not None and not result.stats.pooled

    def test_fold_workers_below_two_stay_serial(self, samples):
        for workers in (0, 1):
            result = WrapperInducer(
                k=10, config=InductionConfig(fold_workers=workers)
            ).induce(samples)
            assert result.stats is not None and not result.stats.pooled

    def test_unstorable_samples_fall_back(self, samples, monkeypatch):
        """A sample whose targets have no unambiguous canonical path
        cannot ship to a worker; induce() must quietly run serial."""
        from repro.runtime import artifact

        def _refuse(*args, **kwargs):
            raise artifact.ArtifactError("not storable")

        monkeypatch.setattr(artifact.StoredSample, "from_sample", _refuse)
        config = InductionConfig(fold_workers=2)
        from repro.induction.induce import InductionStats

        stats = InductionStats(search=config.search)
        from repro.scoring.params import ScoringParams

        assert induce_pooled(samples, config, ScoringParams(), stats) is None
        result = WrapperInducer(k=10, config=config).induce(samples)
        assert result.best is not None
        assert not result.stats.pooled


class TestSharedPool:
    def test_pool_is_reused_per_width(self):
        try:
            assert shared_induction_pool(2) is shared_induction_pool(2)
        finally:
            close_shared_pools()

    def test_close_clears_registry(self):
        first = shared_induction_pool(2)
        close_shared_pools()
        second = shared_induction_pool(2)
        try:
            assert second is not first
        finally:
            close_shared_pools()

    def test_width_clamped_to_cpu_count(self):
        """An absurd worker count cannot allocate an absurd pool — and
        every clamped request maps onto one shared pool, so distinct
        values can never accumulate unbounded executors."""
        import os

        try:
            huge = shared_induction_pool(100_000)
            assert huge._max_workers <= (os.cpu_count() or 1)
            assert huge is shared_induction_pool(2 ** 20)
        finally:
            close_shared_pools()

    def test_workers_use_spawn_context(self):
        """The serving layer calls in from a multithreaded asyncio
        process; forked children inherit copied lock state."""
        try:
            pool = shared_induction_pool(2)
            assert pool._mp_context.get_start_method() == "spawn"
        finally:
            close_shared_pools()

    def test_broken_pool_falls_back_serial_and_is_discarded(
        self, samples, monkeypatch
    ):
        """Spawn workers re-import ``__main__``; a guard-less script
        kills them during bootstrap.  The dead executor must be dropped
        from the registry and induce() must quietly run serial."""
        from concurrent.futures.process import BrokenProcessPool

        from repro.induction import parallel

        class _DeadPool:
            shutdowns = 0

            def map(self, *args, **kwargs):
                raise BrokenProcessPool("workers died during bootstrap")

            def shutdown(self, *args, **kwargs):
                type(self).shutdowns += 1

        dead = _DeadPool()
        parallel._SHARED_POOLS[2] = dead
        monkeypatch.setattr(
            parallel, "shared_induction_pool", lambda workers: dead
        )
        from repro.induction.induce import InductionStats
        from repro.scoring.params import ScoringParams

        stats = InductionStats(search="exhaustive")
        stats.candidates_considered = 5
        try:
            assert induce_pooled(samples, InductionConfig(fold_workers=2),
                                 ScoringParams(), stats) is None
            assert stats.candidates_considered == 5  # rolled back
            assert 2 not in parallel._SHARED_POOLS
            assert _DeadPool.shutdowns == 1
            result = WrapperInducer(
                k=10, config=InductionConfig(fold_workers=2)
            ).induce(samples)
            assert result.best is not None
        finally:
            close_shared_pools()

    def test_guardless_main_script_still_induces(self, tmp_path):
        """End-to-end: a top-level script with no __main__ guard used to
        work under fork pools; under spawn it must fall back serial with
        identical output instead of crashing."""
        import subprocess
        import sys
        import textwrap

        script = tmp_path / "guardless.py"
        script.write_text(
            textwrap.dedent(
                """
                from repro.dom import parse_html
                from repro.induction import WrapperInducer
                from repro.induction.config import InductionConfig
                from repro.induction.samples import QuerySample

                def page(prices):
                    rows = "".join(
                        f'<div class="item"><span class="price">{p}</span></div>'
                        for p in prices
                    )
                    return parse_html(f"<html><body>{rows}</body></html>")

                def sample(doc):
                    targets = list(doc.root.iter_find(tag="span", class_="price"))
                    return QuerySample(doc=doc, targets=targets)

                samples = [sample(page(["$1", "$2"])), sample(page(["$3"]))]
                serial = WrapperInducer(k=10).induce(samples)
                pooled = WrapperInducer(
                    k=10, config=InductionConfig(fold_workers=2)
                ).induce(samples)
                assert pooled.export() == serial.export()
                print("OK", pooled.stats.pooled)
                """
            )
        )
        done = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert done.returncode == 0, done.stderr
        assert "OK False" in done.stdout

    def test_concurrent_requests_share_one_pool(self):
        import threading

        results = []
        barrier = threading.Barrier(8)

        def grab():
            barrier.wait()
            results.append(shared_induction_pool(2))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len({id(pool) for pool in results}) == 1
        finally:
            close_shared_pools()

"""Parallel induction folds: pooled output must be byte-identical to serial.

``fold_workers >= 2`` fans Algorithm 3's per-sample folds and the
candidate aggregation out over the shared process pool; everything a
caller can observe (the ranked instances, the export payload) must be
exactly what the serial path produces.  These tests also pin the
fallback ladder: single samples, ``fold_workers < 2``, and samples that
cannot round-trip through :class:`StoredSample` all run serial.
"""

import pytest

from repro.dom import parse_html
from repro.induction import WrapperInducer
from repro.induction.config import InductionConfig
from repro.induction.parallel import (
    close_shared_pools,
    induce_pooled,
    shared_induction_pool,
)
from repro.induction.samples import QuerySample


def _snapshot(prices, extra_class="stock"):
    rows = "".join(
        f'<div class="item"><a href="/p/{i}">Item {i}</a>'
        f'<span class="price">{price}</span>'
        f'<span class="{extra_class}">yes</span></div>'
        for i, price in enumerate(prices)
    )
    return parse_html(f"<html><body><div id='list'>{rows}</div></body></html>")


def _sample(doc):
    targets = list(doc.root.iter_find(tag="span", class_="price"))
    return QuerySample(doc=doc, targets=targets)


@pytest.fixture
def samples():
    return [
        _sample(_snapshot(["$1", "$2", "$3"])),
        _sample(_snapshot(["$4", "$5", "$6", "$7"])),
        _sample(_snapshot(["$8", "$9"], extra_class="avail")),
    ]


class TestPooledParity:
    def test_pooled_export_matches_serial(self, samples):
        serial = WrapperInducer(k=10).induce(samples)
        pooled = WrapperInducer(
            k=10, config=InductionConfig(fold_workers=2)
        ).induce(samples)
        assert pooled.export() == serial.export()
        assert serial.stats is not None and not serial.stats.pooled
        assert pooled.stats is not None and pooled.stats.pooled

    def test_pooled_pruned_matches_serial_pruned(self, samples):
        serial = WrapperInducer(
            k=10, config=InductionConfig(search="pruned")
        ).induce(samples)
        pooled = WrapperInducer(
            k=10, config=InductionConfig(search="pruned", fold_workers=2)
        ).induce(samples)
        assert pooled.export() == serial.export()
        assert pooled.stats.search == "pruned"


class TestSerialFallbacks:
    def test_single_sample_stays_serial(self, samples):
        result = WrapperInducer(
            k=10, config=InductionConfig(fold_workers=2)
        ).induce(samples[:1])
        assert result.stats is not None and not result.stats.pooled

    def test_fold_workers_below_two_stay_serial(self, samples):
        for workers in (0, 1):
            result = WrapperInducer(
                k=10, config=InductionConfig(fold_workers=workers)
            ).induce(samples)
            assert result.stats is not None and not result.stats.pooled

    def test_unstorable_samples_fall_back(self, samples, monkeypatch):
        """A sample whose targets have no unambiguous canonical path
        cannot ship to a worker; induce() must quietly run serial."""
        from repro.runtime import artifact

        def _refuse(*args, **kwargs):
            raise artifact.ArtifactError("not storable")

        monkeypatch.setattr(artifact.StoredSample, "from_sample", _refuse)
        config = InductionConfig(fold_workers=2)
        from repro.induction.induce import InductionStats

        stats = InductionStats(search=config.search)
        from repro.scoring.params import ScoringParams

        assert induce_pooled(samples, config, ScoringParams(), stats) is None
        result = WrapperInducer(k=10, config=config).induce(samples)
        assert result.best is not None
        assert not result.stats.pooled


class TestSharedPool:
    def test_pool_is_reused_per_width(self):
        try:
            assert shared_induction_pool(2) is shared_induction_pool(2)
        finally:
            close_shared_pools()

    def test_close_clears_registry(self):
        first = shared_induction_pool(2)
        close_shared_pools()
        second = shared_induction_pool(2)
        try:
            assert second is not first
        finally:
            close_shared_pools()

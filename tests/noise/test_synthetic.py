"""Tests for the four synthetic noise types (N1–N4)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dom import parse_html
from repro.noise import (
    apply_noise,
    negative_mid_random,
    negative_random,
    positive_random,
    positive_structural,
)


@pytest.fixture
def doc():
    items = "".join(f"<li class='it'>v{i}</li>" for i in range(10))
    other = "".join(f"<li class='other'>o{i}</li>" for i in range(6))
    return parse_html(
        f"<html><body><div><ul class='main'>{items}</ul>"
        f"<ul class='side'>{other}</ul><p>chatter</p></div></body></html>"
    )


def targets_of(doc):
    return [li for li in doc.root.iter_find(tag="li", class_="it")]


class TestNegativeRandom:
    def test_removes_requested_fraction(self, doc):
        targets = targets_of(doc)
        noisy = negative_random(doc, targets, 0.3, random.Random(1))
        assert len(noisy) == 7

    def test_never_removes_all(self, doc):
        targets = targets_of(doc)
        noisy = negative_random(doc, targets, 5.0, random.Random(1))
        assert len(noisy) >= 1

    def test_zero_intensity_identity(self, doc):
        targets = targets_of(doc)
        assert negative_random(doc, targets, 0.0, random.Random(1)) == doc.sort_nodes(targets)

    def test_subset_of_targets(self, doc):
        targets = targets_of(doc)
        noisy = negative_random(doc, targets, 0.5, random.Random(7))
        assert {id(n) for n in noisy} <= {id(t) for t in targets}


class TestNegativeMidRandom:
    def test_keeps_first_and_last(self, doc):
        targets = doc.sort_nodes(targets_of(doc))
        for seed in range(5):
            noisy = negative_mid_random(doc, targets, 0.7, random.Random(seed))
            assert noisy[0] is targets[0]
            assert noisy[-1] is targets[-1]

    def test_small_sets_untouched(self, doc):
        targets = targets_of(doc)[:2]
        assert len(negative_mid_random(doc, targets, 0.9, random.Random(0))) == 2


class TestPositiveStructural:
    def test_adds_structurally_related_nodes(self, doc):
        targets = targets_of(doc)
        noisy = positive_structural(doc, targets, 0.3, random.Random(2))
        added = [n for n in noisy if id(n) not in {id(t) for t in targets}]
        assert len(added) == 3
        assert all(n.tag == "li" for n in added)  # same tag as targets

    def test_additions_outside_target_set(self, doc):
        targets = targets_of(doc)
        noisy = positive_structural(doc, targets, 0.5, random.Random(3))
        assert len(noisy) == len({id(n) for n in noisy})


class TestPositiveRandom:
    def test_adds_leaf_nodes(self, doc):
        targets = targets_of(doc)
        noisy = positive_random(doc, targets, 0.5, random.Random(4))
        assert len(noisy) == len(targets) + 5

    def test_supports_300_percent(self, doc):
        targets = targets_of(doc)[:4]
        noisy = positive_random(doc, targets, 3.0, random.Random(5))
        assert len(noisy) > len(targets)


class TestApplyNoise:
    def test_dispatch(self, doc):
        targets = targets_of(doc)
        out = apply_noise("negative_random", doc, targets, 0.2, random.Random(0))
        assert len(out) == 8

    def test_unknown_type(self, doc):
        with pytest.raises(ValueError):
            apply_noise("bogus", doc, targets_of(doc), 0.1, random.Random(0))


@settings(max_examples=30, deadline=None)
@given(
    st.sampled_from(["negative_random", "negative_mid_random", "positive_structural", "positive_random"]),
    st.floats(0.0, 1.0),
    st.integers(0, 1000),
)
def test_noise_is_deterministic_per_seed(kind, intensity, seed):
    items = "".join(f"<li class='it'>v{i}</li>" for i in range(8))
    doc = parse_html(f"<html><body><ul>{items}</ul><p>x</p></body></html>")
    targets = [li for li in doc.root.iter_find(tag="li")]
    a = apply_noise(kind, doc, targets, intensity, random.Random(seed))
    b = apply_noise(kind, doc, targets, intensity, random.Random(seed))
    assert [id(n) for n in a] == [id(n) for n in b]

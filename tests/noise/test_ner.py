"""Tests for the simulated NER."""

import random

import pytest

from repro.noise.ner import NERProfile, SimulatedNER
from repro.sites.listings import ListingPageSpec, build_listing_page, listing_pages


@pytest.fixture
def page():
    spec = ListingPageSpec(
        page_id="t", entity_type="person", list_size=20, with_sidebar=True, seed=0
    )
    return build_listing_page(spec)


class TestAnnotate:
    def test_annotations_are_nodes_of_the_page(self, page):
        ner = SimulatedNER()
        out = ner.annotate(page, "person", random.Random(0))
        assert out.nodes
        assert all(page.contains(n) for n in out.nodes)

    def test_noise_rates_within_profile(self, page):
        profile = NERProfile(miss_rate=(0.2, 0.4), random_positive_rate=(0.1, 0.3))
        ner = SimulatedNER(profile)
        out = ner.annotate(page, "person", random.Random(1))
        assert 0.1 <= out.negative_noise <= 0.45
        assert out.positive_noise >= 0.0

    def test_every_page_has_some_noise(self, page):
        ner = SimulatedNER(NERProfile(miss_rate=(0, 0), random_positive_rate=(0, 0),
                                      sidebar_burst_probability=0.0))
        out = ner.annotate(page, "person", random.Random(2))
        assert out.missed or out.spurious

    def test_sidebar_burst_is_structural_noise(self, page):
        profile = NERProfile(sidebar_burst_probability=1.0, random_positive_rate=(0, 0))
        out = SimulatedNER(profile).annotate(page, "person", random.Random(3))
        sidebar_nodes = [n for n in out.spurious if n.meta.get("region") == "sidebar"]
        assert sidebar_nodes

    def test_wrong_entity_type_raises(self, page):
        with pytest.raises(ValueError):
            SimulatedNER().annotate(page, "money", random.Random(0))

    def test_deterministic(self, page):
        a = SimulatedNER().annotate(page, "person", random.Random(9))
        b = SimulatedNER().annotate(page, "person", random.Random(9))
        assert [id(n) for n in a.nodes] == [id(n) for n in b.nodes]


class TestListingPages:
    def test_ten_pages_with_expected_sizes(self):
        pages = listing_pages(10)
        assert len(pages) == 10
        for spec, doc in pages:
            assert 8 <= spec.list_size <= 77
            entities = doc.find_by_meta("role", "entities")
            assert len(entities) == spec.list_size

    def test_entity_types_cycle(self):
        pages = listing_pages(10)
        types = {spec.entity_type for spec, _ in pages}
        assert types == {"date", "person", "location", "organization", "money"}

    def test_sidebar_pages_have_sidebar_entities(self):
        for spec, doc in listing_pages(10):
            sidebar = [
                n for n in doc.root.descendants()
                if n.meta.get("region") == "sidebar"
            ]
            assert bool(sidebar) == spec.with_sidebar

"""The full wrapper lifecycle, end to end:

induce → serialize → reload → batch-extract across 20+ archive
snapshots → detect drift → automatically re-induce → verify recovery.

This is the runtime subsystem's integration contract: every stage runs
on the *reloaded* artifact (never the in-memory induction result), so a
regression anywhere in the save → serve → drift → repair loop fails
here.  The drift scenarios are seeded corpus sites whose churn is known
to break the induced wrapper inside the replay window; at least one
must exhibit the complete break-and-recover arc.
"""

import pytest

from repro.dom.serialize import to_html
from repro.evolution import SyntheticArchive
from repro.induction import QuerySample, WrapperInducer
from repro.runtime import (
    DriftDetector,
    PageJob,
    WrapperArtifact,
    reinduce,
)
from repro.runtime.extractor import BatchExtractor
from repro.scoring.ranking import fbeta
from repro.sites import single_node_tasks
from repro.xpath.canonical import c_changes, canonical_key
from repro.xpath.compile import evaluate_compiled

#: Replay window: 24 snapshots ⇒ 23 served page versions (≥ 20 required).
N_SNAPSHOTS = 24

#: Churny sites whose top wrapper breaks inside the window under the
#: seeded change trajectories (scanned once; the test iterates until one
#: completes the arc, so ranking changes only need *some* site to break).
CANDIDATES = [
    "weather-0/temp",
    "sports-0/quote",
    "finance-1/adv",
    "finance-2/adv",
]


def _f1(result, truth, doc) -> float:
    result_ids = {doc.node_id(n) for n in result}
    truth_ids = {doc.node_id(n) for n in truth}
    tp = len(result_ids & truth_ids)
    return fbeta(tp, len(result_ids) - tp, len(truth_ids) - tp, beta=1.0)


def _run_lifecycle(task_id, tmp_path):
    """Returns a summary dict, or None when the site never drifted."""
    corpus_task = {t.task_id: t for t in single_node_tasks()}[task_id]
    archive = SyntheticArchive(corpus_task.spec, n_snapshots=N_SNAPSHOTS)
    role = corpus_task.task.role

    # 1. induce on snapshot 0 and serialize to disk
    doc0 = archive.snapshot(0)
    targets0 = archive.targets(doc0, role)
    result = WrapperInducer(k=10).induce_one(doc0, targets0)
    induced = WrapperArtifact.from_induction(
        result,
        [QuerySample(doc0, targets0)],
        task_id=task_id,
        site_id=corpus_task.spec.site_id,
        role=role,
        provenance={"snapshot": 0},
    )
    path = tmp_path / induced.filename()
    induced.save(path)

    # 2. reload — everything below runs on the deserialized artifact
    artifact = WrapperArtifact.load(path)
    assert artifact == induced

    # 3. serve: batch-extract the wrapper over every later snapshot and
    #    drift-check each page
    detector = DriftDetector()
    truth_keys = []
    replayed = 0
    drift = None
    for index in range(1, N_SNAPSHOTS):
        if archive.is_broken(index):
            truth_keys.append(None)
            continue
        doc = archive.snapshot(index)
        truth = archive.targets(doc, role)
        if not truth:
            break
        truth_keys.append(canonical_key(truth))
        job = PageJob(
            page_id=f"{artifact.site_id}@{index}",
            html=to_html(doc),
            wrappers=((artifact.task_id, artifact.best.text),),
        )
        (record,) = BatchExtractor(workers=1).extract([job])
        report = detector.check(artifact, doc, snapshot=index)
        replayed += 1
        # The detector and the extraction engine must agree on emptiness.
        assert record.is_empty == (report.result_count == 0)
        if report.drifted:
            drift = (index, doc, truth, report)
            break

    if drift is None:
        return None

    # 4. drift confirmed on a seeded c-change scenario: the ground-truth
    #    canonical fingerprint moved off the stored baseline
    index, doc, truth, report = drift
    assert c_changes([artifact.baseline_paths] + truth_keys) >= 1

    pre_f1 = _f1(evaluate_compiled(artifact.best_query(), doc.root, doc), truth, doc)

    # 5. automatic repair: re-induce from the stored samples + this page
    repaired = reinduce(artifact, doc, snapshot=index)
    post_f1 = _f1(evaluate_compiled(repaired.best_query(), doc.root, doc), truth, doc)

    # 6. the repaired artifact round-trips and keeps extracting
    reloaded = WrapperArtifact.loads(repaired.dumps())
    reload_f1 = _f1(evaluate_compiled(reloaded.best_query(), doc.root, doc), truth, doc)
    assert reload_f1 == post_f1

    return {
        "replayed": replayed,
        "drift_snapshot": index,
        "signals": report.signals,
        "pre_f1": pre_f1,
        "post_f1": post_f1,
        "generation": repaired.generation,
    }


def test_lifecycle_break_and_recover(tmp_path):
    outcomes = []
    for task_id in CANDIDATES:
        summary = _run_lifecycle(task_id, tmp_path)
        if summary is not None:
            outcomes.append((task_id, summary))

    assert outcomes, "no candidate site drifted inside the replay window"

    recovered = [
        (task_id, s) for task_id, s in outcomes if s["post_f1"] > s["pre_f1"]
    ]
    assert recovered, f"no scenario recovered F1 after repair: {outcomes}"

    task_id, summary = recovered[0]
    assert summary["pre_f1"] < 1.0  # it really was broken
    assert summary["post_f1"] == 1.0  # and repair fully recovered it
    assert summary["generation"] == 1


def test_replay_window_spans_20_snapshots(tmp_path):
    """A healthy wrapper must survive a ≥20-snapshot serve loop with the
    artifact reloaded from disk at every stage boundary."""
    corpus_task = {t.task_id: t for t in single_node_tasks()}["academic-0/scholar"]
    archive = SyntheticArchive(corpus_task.spec, n_snapshots=N_SNAPSHOTS)
    doc0 = archive.snapshot(0)
    targets0 = archive.targets(doc0, corpus_task.task.role)
    result = WrapperInducer(k=10).induce_one(doc0, targets0)
    artifact = WrapperArtifact.from_induction(
        result,
        [QuerySample(doc0, targets0)],
        task_id=corpus_task.task_id,
        site_id=corpus_task.spec.site_id,
        role=corpus_task.task.role,
    )
    path = tmp_path / artifact.filename()
    artifact.save(path)
    artifact = WrapperArtifact.load(path)

    jobs = []
    for index in range(1, N_SNAPSHOTS):
        if archive.is_broken(index):
            continue
        jobs.append(
            PageJob(
                page_id=f"{artifact.site_id}@{index}",
                html=to_html(archive.snapshot(index)),
                wrappers=((artifact.task_id, artifact.best.text),),
            )
        )
    assert len(jobs) >= 20
    records = BatchExtractor(workers=2).extract(jobs)
    assert len(records) == len(jobs)
    assert all(not record.is_empty for record in records)

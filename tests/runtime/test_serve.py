"""Async serving layer: request/response correctness, coalescing,
per-site limits, backpressure, and failure isolation."""

import asyncio

import pytest

from repro.runtime import (
    AsyncExtractionServer,
    PageJob,
    RequestError,
    ServingConfig,
    serve_jobs,
    serve_jobs_sync,
)
from repro.runtime.extractor import BatchExtractor
from repro.runtime.serve import default_site_key

PAGE_A = """
<html><body>
<div class="a"><h1 itemprop="name">Alpha</h1><span class="price">10</span></div>
</body></html>
"""

PAGE_B = """
<html><body>
<div class="b"><h2 itemprop="name">Beta</h2><span class="price">20</span></div>
</body></html>
"""

TITLE = 'descendant::*[@itemprop="name"]'
PRICE = 'descendant::span[@class="price"]'


def job(page_id, html, *wrappers):
    return PageJob(page_id=page_id, html=html, wrappers=tuple(wrappers))


def run(coro):
    return asyncio.run(coro)


class TestCorrectness:
    def test_single_request_matches_batch_engine(self):
        request = job("site-a@0", PAGE_A, ("t", TITLE), ("p", PRICE))

        async def go():
            async with AsyncExtractionServer() as server:
                return await server.extract(request)

        assert run(go()) == BatchExtractor().extract([request])

    def test_stream_matches_serial_calls_request_for_request(self):
        requests = [
            job("site-a@0", PAGE_A, ("t", TITLE)),
            job("site-a@0", PAGE_A, ("p", PRICE)),
            job("site-b@0", PAGE_B, ("t", TITLE)),
            job("site-b@0", PAGE_B, ("p", PRICE)),
            job("site-a@1", PAGE_A, ("t", TITLE), ("p", PRICE)),
        ] * 4
        results, stats = serve_jobs_sync(requests, concurrency=4)
        extractor = BatchExtractor()
        assert results == [extractor.extract([request]) for request in requests]
        assert stats.requests == len(requests)

    def test_duplicate_wrapper_ids_with_different_queries_stay_distinct(self):
        # Same wrapper id, different query text, same page in one batch:
        # coalescing must key on (id, text), not id alone.
        requests = [
            job("site-a@0", PAGE_A, ("w", TITLE)),
            job("site-a@0", PAGE_A, ("w", PRICE)),
        ]
        results, _ = serve_jobs_sync(requests, concurrency=2)
        assert results[0][0].values != results[1][0].values

    def test_results_align_with_request_order(self):
        requests = [
            job("site-b@0", PAGE_B, ("t", TITLE)),
            job("site-a@0", PAGE_A, ("t", TITLE)),
        ]
        results, _ = serve_jobs_sync(requests, concurrency=2)
        assert results[0][0].values == ("Beta",)
        assert results[1][0].values == ("Alpha",)


class TestCoalescing:
    def test_same_page_requests_share_one_parse(self):
        requests = [job("site-a@0", PAGE_A, (f"w{i}", TITLE)) for i in range(8)]
        results, stats = serve_jobs_sync(requests, concurrency=8)
        assert stats.pages_parsed < len(requests)
        assert stats.coalesced_requests > 0
        assert all(records[0].values == ("Alpha",) for records in results)

    def test_same_page_id_different_html_never_shares(self):
        requests = [
            job("site-a@0", PAGE_A, ("t", TITLE)),
            job("site-a@0", PAGE_B, ("t", TITLE)),  # re-rendered page
        ]
        results, _ = serve_jobs_sync(requests, concurrency=2)
        assert results[0][0].values == ("Alpha",)
        assert results[1][0].values == ("Beta",)

    def test_lone_request_dispatches_without_batching_peers(self):
        results, stats = serve_jobs_sync(
            [job("site-a@0", PAGE_A, ("t", TITLE))], concurrency=1
        )
        assert stats.batches == 1
        assert stats.pages_parsed == 1
        assert results[0][0].values == ("Alpha",)


class TestLimits:
    def test_per_site_limit_caps_inflight(self):
        config = ServingConfig(per_site_limit=2)
        requests = [job("hot@0", PAGE_A, (f"w{i}", TITLE)) for i in range(12)]

        async def go():
            async with AsyncExtractionServer(config) as server:
                await server.extract_many(requests, concurrency=8)
                return server.stats

        stats = run(go())
        assert stats.peak_site_inflight <= 2

    def test_backpressure_bounds_the_queue(self):
        config = ServingConfig(max_pending=2, max_batch_pages=1)
        requests = [
            job(f"site-{i}@0", PAGE_A, ("t", TITLE)) for i in range(10)
        ]
        results, stats = serve_jobs_sync(requests, config, concurrency=8)
        assert stats.peak_pending <= 2
        assert len(results) == len(requests)

    def test_site_key_defaults_to_page_id_prefix(self):
        assert default_site_key(job("movies-0@3", PAGE_A)) == "movies-0"
        assert default_site_key(job("movies-0", PAGE_A)) == "movies-0"

    def test_invalid_config_is_rejected(self):
        with pytest.raises(ValueError):
            ServingConfig(workers=0)
        with pytest.raises(ValueError):
            ServingConfig(max_pending=0)


class TestFailureIsolation:
    def test_bad_query_fails_its_request_not_the_server(self):
        bad = job("site-a@0", PAGE_A, ("bad", "not a query (("))
        good = job("site-b@0", PAGE_B, ("t", TITLE))

        async def go():
            async with AsyncExtractionServer(ServingConfig(max_batch_pages=1)) as server:
                with pytest.raises(RequestError):
                    await server.extract(bad)
                return await server.extract(good)

        records = run(go())
        assert records[0].values == ("Beta",)

    def test_bad_query_spares_batched_and_coalesced_peers(self):
        """Isolation is per request even when the bad request shares a
        dispatch batch — and a parsed page — with healthy ones."""
        requests = [
            job("site-a@0", PAGE_A, ("t", TITLE)),          # same page as bad
            job("site-a@0", PAGE_A, ("bad", "not a query ((")),
            job("site-a@0", PAGE_A, ("p", PRICE)),          # same page as bad
            job("site-b@0", PAGE_B, ("t", TITLE)),          # same batch
        ]

        async def go():
            async with AsyncExtractionServer() as server:
                results = await asyncio.gather(
                    *(server.extract(r) for r in requests),
                    return_exceptions=True,
                )
                return results, server.stats

        results, stats = run(go())
        assert results[0][0].values == ("Alpha",)
        assert isinstance(results[1], RequestError)
        assert results[2][0].values == ("10",)
        assert results[3][0].values == ("Beta",)
        assert stats.coalesced_requests >= 1  # bad one really shared a page

    def test_aclose_fails_backpressured_waiters(self, monkeypatch):
        """Callers suspended in the bounded queue's put() at close time
        must be failed, not left awaiting a future forever."""
        import time as _time

        import repro.runtime.serve as serve_mod

        original = serve_mod._serve_chunk

        def slow_chunk(payload, cache=None):
            _time.sleep(0.1)  # hold the dispatcher so the queue backs up
            return original(payload, cache)

        monkeypatch.setattr(serve_mod, "_serve_chunk", slow_chunk)

        async def go():
            server = AsyncExtractionServer(
                ServingConfig(max_pending=1, max_batch_pages=1)
            )
            await server.start()
            tasks = [
                asyncio.create_task(
                    server.extract(job(f"site-{i}@0", PAGE_A, ("t", TITLE)))
                )
                for i in range(6)
            ]
            await asyncio.sleep(0.02)  # first dispatched, rest backpressured
            await server.aclose()
            return await asyncio.wait_for(
                asyncio.gather(*tasks, return_exceptions=True), timeout=5
            )

        results = run(go())
        assert len(results) == 6
        closed = [r for r in results if isinstance(r, RuntimeError)]
        assert closed  # the backpressured waiters were failed, not hung

    def test_requests_fail_fast_when_server_closes(self):
        async def go():
            server = AsyncExtractionServer()
            await server.start()
            await server.aclose()
            with pytest.raises(RuntimeError, match="not running"):
                await server.extract(job("site-a@0", PAGE_A, ("t", TITLE)))

        run(go())

    def test_double_start_is_rejected(self):
        async def go():
            async with AsyncExtractionServer() as server:
                with pytest.raises(RuntimeError, match="already started"):
                    await server.start()

        run(go())


class TestProcessPoolMode:
    def test_multiprocess_server_matches_thread_server(self):
        requests = [
            job("site-a@0", PAGE_A, ("t", TITLE)),
            job("site-b@0", PAGE_B, ("p", PRICE)),
        ] * 3
        single, _ = serve_jobs_sync(requests, ServingConfig(workers=1))
        multi, _ = serve_jobs_sync(requests, ServingConfig(workers=2))
        assert single == multi


class TestServeJobsHelpers:
    def test_serve_jobs_inside_running_loop(self):
        requests = [job("site-a@0", PAGE_A, ("t", TITLE))]

        async def go():
            return await serve_jobs(requests, concurrency=1)

        results, stats = run(go())
        assert results[0][0].values == ("Alpha",)
        assert stats.requests == 1

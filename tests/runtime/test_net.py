"""The HTTP front-end: protocol correctness and failure containment.

Covers the satellite failure paths: malformed JSON requests, unknown
site keys, oversized payloads, clients disconnecting mid-request, and
concurrent clients hitting the same page (coalescing must still
demultiplex per caller)."""

import asyncio
import json

import pytest

from repro import Sample, WrapperClient, mark_volatile, parse_html
from repro.runtime.net import NetConfig, WrapperHTTPServer
from repro.runtime.serve import ServingConfig

TITLE_PAGE = """
<html><body>
<div class="head"><p>nav</p></div>
<div class="item"><h1 class="name">Alpha</h1><span class="price">10</span></div>
<div class="foot"><p>imprint</p></div>
</body></html>
"""


def run(coro):
    return asyncio.run(coro)


def deployed_client() -> WrapperClient:
    client = WrapperClient()
    doc = parse_html(TITLE_PAGE)
    name = doc.find(tag="h1", class_="name")
    price = doc.find(tag="span", class_="price")
    mark_volatile(name, price)
    client.induce("shop/name", [Sample(doc, [name])])
    client.induce("shop/price", [Sample(doc, [price])])
    return client


async def raw_request(host, port, payload: bytes):
    """One raw HTTP exchange; returns (status, headers, body_json)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(payload)
        await writer.drain()
        return await read_response(reader)
    finally:
        writer.close()


async def read_response(reader):
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        if ":" in line:
            name, value = line.split(":", 1)
            headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers["content-length"]))
    return status, headers, json.loads(body)


def post(path: str, payload: dict) -> bytes:
    body = json.dumps(payload).encode()
    return (
        f"POST {path} HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n"
    ).encode() + body


class TestFailurePaths:
    def test_malformed_json_is_400_and_connection_survives(self):
        async def go():
            async with WrapperHTTPServer(WrapperClient()) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                bad = b"POST /extract HTTP/1.1\r\nContent-Length: 7\r\n\r\nnotjson"
                writer.write(bad)
                status, _, body = await read_response(reader)
                assert status == 400
                assert body["code"] == "bad_request"
                assert "JSON" in body["error"]
                # The same connection keeps serving after the bad request.
                writer.write(b"GET /healthz HTTP/1.1\r\n\r\n")
                status2, _, body2 = await read_response(reader)
                writer.close()
                assert status2 == 200 and body2["ok"] is True

        run(go())

    def test_unknown_site_key_is_404_unknown_wrapper(self):
        async def go():
            async with WrapperHTTPServer(WrapperClient()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host, port, post("/extract", {"site_key": "no/such", "html": "<p>x</p>"})
                )
                assert status == 404
                assert body["code"] == "unknown_wrapper"
                status2, _, body2 = await raw_request(
                    host, port, b"GET /wrappers/no%2Fsuch HTTP/1.1\r\n\r\n"
                )
                assert status2 == 404 and body2["code"] == "unknown_wrapper"

        run(go())

    def test_unknown_endpoint_and_wrong_method(self):
        async def go():
            async with WrapperHTTPServer(WrapperClient()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host, port, b"GET /nothing HTTP/1.1\r\n\r\n"
                )
                assert status == 404 and body["code"] == "not_found"
                status2, _, body2 = await raw_request(
                    host, port, b"GET /extract HTTP/1.1\r\n\r\n"
                )
                assert status2 == 405 and body2["code"] == "method_not_allowed"

        run(go())

    def test_oversized_payload_is_413_without_reading_the_body(self):
        config = NetConfig(max_body_bytes=1024)

        async def go():
            async with WrapperHTTPServer(WrapperClient(), config) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                # Announce a huge body but never send it: the server must
                # answer from the Content-Length alone.
                writer.write(
                    b"POST /extract HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n"
                )
                status, headers, body = await read_response(reader)
                writer.close()
                assert status == 413
                assert body["code"] == "payload_too_large"
                assert headers["connection"] == "close"

        run(go())

    def test_client_disconnect_mid_request_leaves_server_serving(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                # Disconnect mid-head.
                _, w1 = await asyncio.open_connection(host, port)
                w1.write(b"POST /extract HTT")
                await w1.drain()
                w1.close()
                # Disconnect mid-body (Content-Length promised, not kept).
                _, w2 = await asyncio.open_connection(host, port)
                w2.write(b"POST /extract HTTP/1.1\r\nContent-Length: 500\r\n\r\n{...")
                await w2.drain()
                w2.close()
                await asyncio.sleep(0.05)
                # The server still answers real requests.
                status, _, body = await raw_request(
                    host, port, post("/extract", {"site_key": "shop/name", "html": TITLE_PAGE})
                )
                assert status == 200
                assert body["values"] == ["Alpha"]

        run(go())

    def test_missing_fields_are_400(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host, port, post("/extract", {"site_key": "shop/name"})
                )
                assert status == 400 and "html" in body["error"]
                status2, _, body2 = await raw_request(
                    host, port, post("/induce", {"site_key": "x", "samples": []})
                )
                assert status2 == 400 and "samples" in body2["error"]

        run(go())

    def test_facade_errors_are_422(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host,
                    port,
                    post(
                        "/induce",
                        {"site_key": "x", "mode": "magic", "samples": [{"bogus": 1}]},
                    ),
                )
                assert status == 422
                assert body["code"] == "unprocessable"

        run(go())


class TestConcurrency:
    def test_concurrent_clients_on_one_page_coalesce_and_demux(self):
        """Many clients hit the same rendered page at once: the serving
        layer parses it once (coalescing) while every caller still gets
        the records for *its* wrapper."""
        client = deployed_client()
        config = NetConfig(serving=ServingConfig(workers=1))

        async def one(host, port, site_key):
            return await raw_request(
                host, port, post("/extract", {"site_key": site_key, "html": TITLE_PAGE})
            )

        async def go():
            async with WrapperHTTPServer(client, config) as server:
                host, port = server.address
                keys = ["shop/name", "shop/price"] * 6
                answers = await asyncio.gather(*(one(host, port, k) for k in keys))
                return answers, server.serving_stats

        answers, stats = run(go())
        for (status, _, body), key in zip(answers, ["shop/name", "shop/price"] * 6):
            assert status == 200
            expected = ["Alpha"] if key == "shop/name" else ["10"]
            assert body["values"] == expected, f"wrong demux for {key}"
        assert stats.coalesced_requests > 0
        assert stats.pages_parsed < stats.requests

    def test_keep_alive_serves_sequential_requests(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                for _ in range(3):
                    writer.write(
                        post("/extract", {"site_key": "shop/name", "html": TITLE_PAGE})
                    )
                    status, _, body = await read_response(reader)
                    assert status == 200 and body["values"] == ["Alpha"]
                writer.close()

        run(go())

    def test_healthz_reports_wrappers_and_serving_stats(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                await raw_request(
                    host, port, post("/extract", {"site_key": "shop/name", "html": TITLE_PAGE})
                )
                status, _, body = await raw_request(
                    host, port, b"GET /healthz HTTP/1.1\r\n\r\n"
                )
                assert status == 200
                assert body["ok"] is True and body["wrappers"] == 2
                assert body["serving"]["requests"] >= 1

        run(go())

    def test_wrappers_listing_and_delete(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host, port, b"GET /wrappers HTTP/1.1\r\n\r\n"
                )
                assert status == 200
                assert {w["site_key"] for w in body["wrappers"]} == {
                    "shop/name",
                    "shop/price",
                }
                status2, _, body2 = await raw_request(
                    host, port, b"DELETE /wrappers/shop%2Fname HTTP/1.1\r\n\r\n"
                )
                assert status2 == 200 and body2["deleted"] == "shop/name"
                status3, _, _ = await raw_request(
                    host, port, b"GET /wrappers/shop%2Fname HTTP/1.1\r\n\r\n"
                )
                assert status3 == 404

        run(go())


def get(path: str, headers: dict = None) -> bytes:
    extra = "".join(f"{k}: {v}\r\n" for k, v in (headers or {}).items())
    return f"GET {path} HTTP/1.1\r\n{extra}\r\n".encode()


def post_with_headers(path: str, payload: dict, headers: dict) -> bytes:
    body = json.dumps(payload).encode()
    extra = "".join(f"{k}: {v}\r\n" for k, v in headers.items())
    return (
        f"POST {path} HTTP/1.1\r\nContent-Length: {len(body)}\r\n{extra}\r\n"
    ).encode() + body


class TestRawPathRouting:
    """Regression: routing happens on the RAW path; only the
    /wrappers/<key> remainder is percent-decoded.  Decoding the whole
    path first let %2F grow extra segments and %-encoding alias fixed
    endpoints."""

    def test_encoded_key_on_every_wrappers_verb(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host, port, get("/wrappers/shop%2Fname")
                )
                assert status == 200 and body["site_key"] == "shop/name"
                status2, _, body2 = await raw_request(
                    host, port, b"DELETE /wrappers/shop%2Fname HTTP/1.1\r\n\r\n"
                )
                assert status2 == 200 and body2["deleted"] == "shop/name"
                status3, _, body3 = await raw_request(
                    host, port, get("/wrappers/shop%2Fname")
                )
                assert status3 == 404 and body3["code"] == "unknown_wrapper"

        run(go())

    def test_encoded_slash_cannot_grow_path_segments(self):
        """``/wrappers%2Fx`` is NOT ``/wrappers/x`` — it must miss every
        route (previously it decoded early and was misrouted into a key
        lookup)."""

        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host, port, get("/wrappers%2Fshop%2Fname")
                )
                assert status == 404 and body["code"] == "not_found"

        run(go())

    def test_encoded_endpoint_name_is_not_an_alias(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host,
                    port,
                    post("/%65xtract", {"site_key": "shop/name", "html": "<p/>"}),
                )
                assert status == 404 and body["code"] == "not_found"

        run(go())

    def test_encoded_question_mark_stays_in_the_key(self):
        """``%3F`` in a key segment is key data, never a query split."""

        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host, port, get("/wrappers/a%3Fb")
                )
                assert status == 404 and body["code"] == "unknown_wrapper"
                assert "a?b" in body["error"]

        run(go())

    def test_traversal_shaped_key_is_a_key_not_a_path(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host, port, get("/wrappers/a%2F..%2Fb")
                )
                assert status == 404 and body["code"] == "unknown_wrapper"
                assert "a/../b" in body["error"]

        run(go())


class TestBodyFraming:
    """The 411/400 satellite: bodies are framed by Content-Length only,
    and a POST that cannot be framed gets a typed answer — not a
    confusing JSON-parse 400 on an empty body."""

    def test_post_without_content_length_is_411(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, headers, body = await raw_request(
                    host, port, b"POST /extract HTTP/1.1\r\n\r\n"
                )
                assert status == 411 and body["code"] == "length_required"
                assert "Content-Length" in body["error"]
                assert headers["connection"] == "close"

        run(go())

    def test_chunked_transfer_encoding_is_411(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host,
                    port,
                    b"POST /extract HTTP/1.1\r\n"
                    b"Transfer-Encoding: chunked\r\n\r\n"
                    b"0\r\n\r\n",
                )
                assert status == 411 and body["code"] == "length_required"
                assert "Transfer-Encoding" in body["error"]

        run(go())

    def test_negative_and_garbage_content_length_are_400(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host,
                    port,
                    b"POST /extract HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
                )
                assert status == 400 and "negative" in body["error"]
                status2, _, body2 = await raw_request(
                    host,
                    port,
                    b"POST /extract HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
                )
                assert status2 == 400 and "invalid" in body2["error"]

        run(go())

    def test_bodyless_get_still_fine_without_content_length(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(host, port, get("/healthz"))
                assert status == 200 and body["ok"] is True

        run(go())


class TestReasonPhrases:
    def test_new_statuses_have_phrases(self):
        from repro.runtime.net import _reason

        assert _reason(401) == "Unauthorized"
        assert _reason(403) == "Forbidden"
        assert _reason(411) == "Length Required"
        assert _reason(429) == "Too Many Requests"

    def test_unlisted_status_falls_back_and_never_crashes(self):
        from repro.runtime.net import _reason

        assert _reason(418)  # stdlib-known, not in _REASONS
        assert _reason(599) == "Unknown"
        assert _reason(999) == "Unknown"

    def test_status_line_carries_the_phrase_on_the_wire(self):
        async def go():
            async with WrapperHTTPServer(WrapperClient()) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"POST /extract HTTP/1.1\r\n\r\n")
                head = await reader.readuntil(b"\r\n\r\n")
                writer.close()
                assert head.split(b"\r\n")[0] == b"HTTP/1.1 411 Length Required"

        run(go())


def _keyed_config(**kwargs) -> NetConfig:
    from repro.runtime.auth import ApiKeyTable

    return NetConfig(
        auth=ApiKeyTable.from_lines(
            [
                "k-admin-aaaaaaaa *",
                "k-acme-bbbbbbbb acme",
                "k-open-cccccccc",
            ]
        ),
        **kwargs,
    )


class TestAuth:
    def test_missing_key_is_401_before_any_routing(self):
        async def go():
            async with WrapperHTTPServer(deployed_client(), _keyed_config()) as server:
                host, port = server.address
                for request in (
                    get("/wrappers"),
                    get("/wrappers/shop%2Fname"),
                    post("/extract", {"site_key": "shop/name", "html": "<p/>"}),
                    post("/induce", {}),
                    get("/nothing"),  # even unknown endpoints answer 401
                ):
                    status, headers, body = await raw_request(host, port, request)
                    assert status == 401, body
                    assert body["code"] == "unauthorized"
                    assert headers["www-authenticate"] == "Bearer"

        run(go())

    def test_unknown_key_is_401(self):
        async def go():
            async with WrapperHTTPServer(deployed_client(), _keyed_config()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host,
                    port,
                    get("/wrappers", {"Authorization": "Bearer k-wrong-ffffffff"}),
                )
                assert status == 401 and body["code"] == "unauthorized"

        run(go())

    def test_wrong_tenant_key_is_403(self):
        async def go():
            async with WrapperHTTPServer(deployed_client(), _keyed_config()) as server:
                host, port = server.address
                # "shop/name" lives in the default namespace; acme's key
                # must not reach it.
                status, _, body = await raw_request(
                    host,
                    port,
                    get(
                        "/wrappers/shop%2Fname",
                        {"Authorization": "Bearer k-acme-bbbbbbbb"},
                    ),
                )
                assert status == 403 and body["code"] == "forbidden"

        run(go())

    def test_matching_and_admin_keys_pass(self):
        async def go():
            async with WrapperHTTPServer(deployed_client(), _keyed_config()) as server:
                host, port = server.address
                for key in ("k-open-cccccccc", "k-admin-aaaaaaaa"):
                    status, _, body = await raw_request(
                        host,
                        port,
                        get(
                            "/wrappers/shop%2Fname",
                            {"Authorization": f"Bearer {key}"},
                        ),
                    )
                    assert status == 200 and body["site_key"] == "shop/name"

        run(go())

    def test_x_api_key_header_works_too(self):
        async def go():
            async with WrapperHTTPServer(deployed_client(), _keyed_config()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host,
                    port,
                    get("/wrappers", {"X-API-Key": "k-open-cccccccc"}),
                )
                assert status == 200 and len(body["wrappers"]) == 2

        run(go())

    def test_healthz_and_metrics_stay_open(self):
        async def go():
            async with WrapperHTTPServer(deployed_client(), _keyed_config()) as server:
                host, port = server.address
                status, _, body = await raw_request(host, port, get("/healthz"))
                assert status == 200 and body["ok"] is True
                status2, _, body2 = await raw_request(host, port, get("/metrics"))
                assert status2 == 200 and body2["ok"] is True

        run(go())

    def test_no_auth_launch_is_backward_compatible(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                # Keyless requests pass; a stray key header is ignored.
                status, _, _ = await raw_request(host, port, get("/wrappers"))
                assert status == 200
                status2, _, _ = await raw_request(
                    host, port, get("/wrappers", {"Authorization": "Bearer whatever"})
                )
                assert status2 == 200

        run(go())


class TestQuotas:
    def test_rate_limit_answers_429_with_retry_after(self):
        from repro.runtime.auth import QuotaConfig

        config = NetConfig(quota=QuotaConfig(rate=0.01, burst=2))

        async def go():
            async with WrapperHTTPServer(deployed_client(), config) as server:
                host, port = server.address
                for _ in range(2):
                    status, _, _ = await raw_request(host, port, get("/wrappers"))
                    assert status == 200
                status, headers, body = await raw_request(
                    host, port, get("/wrappers")
                )
                assert status == 429 and body["code"] == "rate_limited"
                assert body["retry_after"] > 0
                assert int(headers["retry-after"]) >= 1
                # /healthz and /metrics are never throttled.
                status2, _, _ = await raw_request(host, port, get("/healthz"))
                assert status2 == 200

        run(go())

    def test_quota_is_per_tenant_namespace(self):
        from repro.runtime.auth import QuotaConfig

        client = WrapperClient()
        config = NetConfig(quota=QuotaConfig(rate=0.01, burst=1))

        async def go():
            async with WrapperHTTPServer(client, config) as server:
                host, port = server.address
                # Drain the default tenant's bucket...
                status, _, _ = await raw_request(
                    host, port, get("/wrappers/some%2Fkey")
                )
                assert status == 404
                status2, _, body2 = await raw_request(
                    host, port, get("/wrappers/some%2Fkey")
                )
                assert status2 == 429, body2
                # ...while another tenant's bucket is untouched.
                status3, _, _ = await raw_request(
                    host, port, get("/wrappers/acme%3A%3Asome%2Fkey")
                )
                assert status3 == 404

        run(go())


class TestMetricsEndpoint:
    def test_metrics_reports_counters_and_state(self):
        async def go():
            async with WrapperHTTPServer(deployed_client(), _keyed_config()) as server:
                host, port = server.address
                await raw_request(
                    host,
                    port,
                    post_with_headers(
                        "/extract",
                        {"site_key": "shop/name", "html": TITLE_PAGE},
                        {"Authorization": "Bearer k-open-cccccccc"},
                    ),
                )
                await raw_request(host, port, get("/wrappers"))  # 401
                status, _, body = await raw_request(host, port, get("/metrics"))
                assert status == 200
                assert body["ok"] is True
                assert body["queue_depth"] >= 0
                assert body["serving"]["requests"] >= 1
                assert 0.0 <= body["coalescing_rate"] <= 1.0
                assert body["requests_total"] >= 2
                assert body["by_status"]["200"] >= 1
                assert body["auth"]["unauthorized_401"] >= 1
                assert body["tenants"][""]["requests"] >= 2
                assert body["tenant_state"]["cap"] >= 1

        run(go())


class TestAccessLogWire:
    def test_one_jsonl_record_per_answered_request(self):
        import io

        from repro.runtime.auth import AccessLog

        stream = io.StringIO()
        config = NetConfig(access_log=AccessLog(stream=stream))

        async def go():
            async with WrapperHTTPServer(deployed_client(), config) as server:
                host, port = server.address
                await raw_request(
                    host,
                    port,
                    post("/extract", {"site_key": "shop/name", "html": TITLE_PAGE}),
                )
                await raw_request(host, port, get("/wrappers/no%2Fsuch"))
                # aclose() closes the log stream; read it while live.
                return stream.getvalue()

        text = run(go())
        records = [json.loads(line) for line in text.splitlines()]
        assert len(records) == 2
        assert records[0]["verb"] == "POST /extract"
        assert records[0]["status"] == 200
        assert records[0]["latency_ms"] >= 0
        assert records[0]["coalesced"] is False
        assert records[1]["verb"] == "GET /wrappers/no%2Fsuch"
        assert records[1]["status"] == 404

    def test_coalesced_requests_are_flagged(self):
        import io

        from repro.runtime.auth import AccessLog

        stream = io.StringIO()
        client = deployed_client()
        config = NetConfig(
            serving=ServingConfig(workers=1),
            access_log=AccessLog(stream=stream),
        )

        async def one(host, port, site_key):
            return await raw_request(
                host,
                port,
                post("/extract", {"site_key": site_key, "html": TITLE_PAGE}),
            )

        async def go():
            async with WrapperHTTPServer(client, config) as server:
                host, port = server.address
                keys = ["shop/name", "shop/price"] * 6
                await asyncio.gather(*(one(host, port, k) for k in keys))
                return server.serving_stats, stream.getvalue()

        stats, text = run(go())
        records = [json.loads(line) for line in text.splitlines()]
        flagged = sum(record["coalesced"] for record in records)
        assert flagged == stats.coalesced_requests
        assert flagged > 0


class TestConfig:
    def test_invalid_net_config_rejected(self):
        with pytest.raises(ValueError):
            NetConfig(max_body_bytes=0)
        with pytest.raises(ValueError):
            NetConfig(max_header_bytes=8)

    def test_double_start_rejected(self):
        async def go():
            async with WrapperHTTPServer(WrapperClient()) as server:
                with pytest.raises(RuntimeError, match="already started"):
                    await server.start()

        run(go())


class TestInduceWire:
    """The induce-side fast-path surface: dedicated executor metrics,
    the ``options`` wire field, and ``induce_ms`` in the access log."""

    def _wire_sample(self) -> dict:
        from repro import Sample as FacadeSample

        doc = parse_html(TITLE_PAGE)
        price = doc.find(tag="span", class_="price")
        mark_volatile(price)
        return FacadeSample(doc, [price]).to_payload()

    def test_metrics_grow_an_induction_block(self):
        sample = self._wire_sample()

        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host,
                    port,
                    post("/induce", {"site_key": "shop/wire", "samples": [sample]}),
                )
                assert status == 200, body
                status2, _, metrics = await raw_request(host, port, get("/metrics"))
                assert status2 == 200
                return metrics["induction"]

        block = run(go())
        # Client-level counters (deployed_client() already induced twice).
        assert block["inductions"] >= 3
        # Exhaustive default: the pruner (which owns these counters)
        # never runs, so both stay zero.
        assert block["candidates_considered"] == 0
        assert block["pruned_candidates_skipped"] == 0
        assert block["repairs"] == 0
        # Executor-level gauges.
        assert block["induce_pool_workers"] >= 1
        assert block["induce_pool_depth"] == 0  # idle at scrape time
        assert block["induce_pool_depth_peak"] >= 1
        assert block["induce_requests"] == 1
        assert block["induce_latency_avg_ms"] > 0
        assert block["induce_latency_max_ms"] >= block["induce_latency_avg_ms"]

    def test_options_reach_the_inducer(self):
        sample = self._wire_sample()

        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host,
                    port,
                    post(
                        "/induce",
                        {
                            "site_key": "shop/pruned",
                            "samples": [sample],
                            "options": {"search": "pruned", "prune_seed": 3},
                        },
                    ),
                )
                assert status == 200, body
                # The stats land in the stored artifact's provenance.
                artifact = server.client.artifact("shop/pruned")
                stamped = artifact.provenance["facade"]["induction"]
                assert stamped["search"] == "pruned"
                _, _, metrics = await raw_request(host, port, get("/metrics"))
                return metrics["induction"]

        block = run(go())
        assert block["inductions"] >= 3
        assert block["candidates_considered"] > 0

    def test_bad_options_rejected(self):
        sample = self._wire_sample()

        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host,
                    port,
                    post(
                        "/induce",
                        {
                            "site_key": "shop/x",
                            "samples": [sample],
                            "options": "pruned",
                        },
                    ),
                )
                assert status == 400 and "options" in body["error"]
                status2, _, body2 = await raw_request(
                    host,
                    port,
                    post(
                        "/induce",
                        {
                            "site_key": "shop/x",
                            "samples": [sample],
                            "options": {"beem_width": 4},
                        },
                    ),
                )
                assert status2 == 422, body2
                assert "unknown induction options" in body2["error"]

        run(go())

    def test_resource_options_clamped_before_the_inducer(self):
        """Pool- and work-sizing options from untrusted clients are
        clamped server-side: ``fold_workers`` can never exceed the CPU
        count (it sizes a persistent process pool), beam/trial widths
        are bounded, and everything else passes through untouched."""
        import os

        sanitize = WrapperHTTPServer._sanitize_induce_options
        sanitized = sanitize(
            {
                "fold_workers": 100_000,
                "beam_width": 10**6,
                "prune_trials": 999,
                "prune_seed": 7,
                "search": "pruned",
            }
        )
        assert sanitized["fold_workers"] <= (os.cpu_count() or 1)
        assert sanitized["beam_width"] == 64
        assert sanitized["prune_trials"] == 32
        assert sanitized["prune_seed"] == 7
        assert sanitized["search"] == "pruned"
        # Non-integer values pass through for config validation to 422.
        assert sanitize({"fold_workers": 2.5}) == {"fold_workers": 2.5}
        assert sanitize(None) is None
        assert sanitize({}) == {}

    def test_huge_wire_fold_workers_accepted_but_bounded(self):
        from repro.induction import parallel

        sample = self._wire_sample()

        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host,
                    port,
                    post(
                        "/induce",
                        {
                            "site_key": "shop/wire",
                            "samples": [sample],
                            "options": {"fold_workers": 100_000},
                        },
                    ),
                )
                assert status == 200, body

        run(go())
        import os

        assert all(
            workers <= (os.cpu_count() or 1) for workers in parallel._SHARED_POOLS
        )

    def test_wrongly_typed_option_is_422_not_500(self):
        sample = self._wire_sample()

        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host,
                    port,
                    post(
                        "/induce",
                        {
                            "site_key": "shop/x",
                            "samples": [sample],
                            "options": {"search": "pruned", "beam_width": 2.5},
                        },
                    ),
                )
                assert status == 422, body
                assert "beam_width" in body["error"]

        run(go())

    def test_access_log_stamps_induce_ms_only_on_induce(self):
        import io

        from repro.runtime.auth import AccessLog

        sample = self._wire_sample()
        stream = io.StringIO()
        config = NetConfig(access_log=AccessLog(stream=stream))

        async def go():
            async with WrapperHTTPServer(deployed_client(), config) as server:
                host, port = server.address
                await raw_request(
                    host,
                    port,
                    post("/induce", {"site_key": "shop/wire", "samples": [sample]}),
                )
                await raw_request(
                    host,
                    port,
                    post("/extract", {"site_key": "shop/name", "html": TITLE_PAGE}),
                )
                return stream.getvalue()

        text = run(go())
        records = [json.loads(line) for line in text.splitlines()]
        assert len(records) == 2
        induce_record, extract_record = records
        assert induce_record["verb"] == "POST /induce"
        assert induce_record["induce_ms"] >= 0
        assert induce_record["induce_ms"] <= induce_record["latency_ms"]
        assert "induce_ms" not in extract_record

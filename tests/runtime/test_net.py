"""The HTTP front-end: protocol correctness and failure containment.

Covers the satellite failure paths: malformed JSON requests, unknown
site keys, oversized payloads, clients disconnecting mid-request, and
concurrent clients hitting the same page (coalescing must still
demultiplex per caller)."""

import asyncio
import json

import pytest

from repro import Sample, WrapperClient, mark_volatile, parse_html
from repro.runtime.net import NetConfig, WrapperHTTPServer
from repro.runtime.serve import ServingConfig

TITLE_PAGE = """
<html><body>
<div class="head"><p>nav</p></div>
<div class="item"><h1 class="name">Alpha</h1><span class="price">10</span></div>
<div class="foot"><p>imprint</p></div>
</body></html>
"""


def run(coro):
    return asyncio.run(coro)


def deployed_client() -> WrapperClient:
    client = WrapperClient()
    doc = parse_html(TITLE_PAGE)
    name = doc.find(tag="h1", class_="name")
    price = doc.find(tag="span", class_="price")
    mark_volatile(name, price)
    client.induce("shop/name", [Sample(doc, [name])])
    client.induce("shop/price", [Sample(doc, [price])])
    return client


async def raw_request(host, port, payload: bytes):
    """One raw HTTP exchange; returns (status, headers, body_json)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(payload)
        await writer.drain()
        return await read_response(reader)
    finally:
        writer.close()


async def read_response(reader):
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        if ":" in line:
            name, value = line.split(":", 1)
            headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers["content-length"]))
    return status, headers, json.loads(body)


def post(path: str, payload: dict) -> bytes:
    body = json.dumps(payload).encode()
    return (
        f"POST {path} HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n"
    ).encode() + body


class TestFailurePaths:
    def test_malformed_json_is_400_and_connection_survives(self):
        async def go():
            async with WrapperHTTPServer(WrapperClient()) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                bad = b"POST /extract HTTP/1.1\r\nContent-Length: 7\r\n\r\nnotjson"
                writer.write(bad)
                status, _, body = await read_response(reader)
                assert status == 400
                assert body["code"] == "bad_request"
                assert "JSON" in body["error"]
                # The same connection keeps serving after the bad request.
                writer.write(b"GET /healthz HTTP/1.1\r\n\r\n")
                status2, _, body2 = await read_response(reader)
                writer.close()
                assert status2 == 200 and body2["ok"] is True

        run(go())

    def test_unknown_site_key_is_404_unknown_wrapper(self):
        async def go():
            async with WrapperHTTPServer(WrapperClient()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host, port, post("/extract", {"site_key": "no/such", "html": "<p>x</p>"})
                )
                assert status == 404
                assert body["code"] == "unknown_wrapper"
                status2, _, body2 = await raw_request(
                    host, port, b"GET /wrappers/no%2Fsuch HTTP/1.1\r\n\r\n"
                )
                assert status2 == 404 and body2["code"] == "unknown_wrapper"

        run(go())

    def test_unknown_endpoint_and_wrong_method(self):
        async def go():
            async with WrapperHTTPServer(WrapperClient()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host, port, b"GET /nothing HTTP/1.1\r\n\r\n"
                )
                assert status == 404 and body["code"] == "not_found"
                status2, _, body2 = await raw_request(
                    host, port, b"GET /extract HTTP/1.1\r\n\r\n"
                )
                assert status2 == 405 and body2["code"] == "method_not_allowed"

        run(go())

    def test_oversized_payload_is_413_without_reading_the_body(self):
        config = NetConfig(max_body_bytes=1024)

        async def go():
            async with WrapperHTTPServer(WrapperClient(), config) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                # Announce a huge body but never send it: the server must
                # answer from the Content-Length alone.
                writer.write(
                    b"POST /extract HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n"
                )
                status, headers, body = await read_response(reader)
                writer.close()
                assert status == 413
                assert body["code"] == "payload_too_large"
                assert headers["connection"] == "close"

        run(go())

    def test_client_disconnect_mid_request_leaves_server_serving(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                # Disconnect mid-head.
                _, w1 = await asyncio.open_connection(host, port)
                w1.write(b"POST /extract HTT")
                await w1.drain()
                w1.close()
                # Disconnect mid-body (Content-Length promised, not kept).
                _, w2 = await asyncio.open_connection(host, port)
                w2.write(b"POST /extract HTTP/1.1\r\nContent-Length: 500\r\n\r\n{...")
                await w2.drain()
                w2.close()
                await asyncio.sleep(0.05)
                # The server still answers real requests.
                status, _, body = await raw_request(
                    host, port, post("/extract", {"site_key": "shop/name", "html": TITLE_PAGE})
                )
                assert status == 200
                assert body["values"] == ["Alpha"]

        run(go())

    def test_missing_fields_are_400(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host, port, post("/extract", {"site_key": "shop/name"})
                )
                assert status == 400 and "html" in body["error"]
                status2, _, body2 = await raw_request(
                    host, port, post("/induce", {"site_key": "x", "samples": []})
                )
                assert status2 == 400 and "samples" in body2["error"]

        run(go())

    def test_facade_errors_are_422(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host,
                    port,
                    post(
                        "/induce",
                        {"site_key": "x", "mode": "magic", "samples": [{"bogus": 1}]},
                    ),
                )
                assert status == 422
                assert body["code"] == "unprocessable"

        run(go())


class TestConcurrency:
    def test_concurrent_clients_on_one_page_coalesce_and_demux(self):
        """Many clients hit the same rendered page at once: the serving
        layer parses it once (coalescing) while every caller still gets
        the records for *its* wrapper."""
        client = deployed_client()
        config = NetConfig(serving=ServingConfig(workers=1))

        async def one(host, port, site_key):
            return await raw_request(
                host, port, post("/extract", {"site_key": site_key, "html": TITLE_PAGE})
            )

        async def go():
            async with WrapperHTTPServer(client, config) as server:
                host, port = server.address
                keys = ["shop/name", "shop/price"] * 6
                answers = await asyncio.gather(*(one(host, port, k) for k in keys))
                return answers, server.serving_stats

        answers, stats = run(go())
        for (status, _, body), key in zip(answers, ["shop/name", "shop/price"] * 6):
            assert status == 200
            expected = ["Alpha"] if key == "shop/name" else ["10"]
            assert body["values"] == expected, f"wrong demux for {key}"
        assert stats.coalesced_requests > 0
        assert stats.pages_parsed < stats.requests

    def test_keep_alive_serves_sequential_requests(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                for _ in range(3):
                    writer.write(
                        post("/extract", {"site_key": "shop/name", "html": TITLE_PAGE})
                    )
                    status, _, body = await read_response(reader)
                    assert status == 200 and body["values"] == ["Alpha"]
                writer.close()

        run(go())

    def test_healthz_reports_wrappers_and_serving_stats(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                await raw_request(
                    host, port, post("/extract", {"site_key": "shop/name", "html": TITLE_PAGE})
                )
                status, _, body = await raw_request(
                    host, port, b"GET /healthz HTTP/1.1\r\n\r\n"
                )
                assert status == 200
                assert body["ok"] is True and body["wrappers"] == 2
                assert body["serving"]["requests"] >= 1

        run(go())

    def test_wrappers_listing_and_delete(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await raw_request(
                    host, port, b"GET /wrappers HTTP/1.1\r\n\r\n"
                )
                assert status == 200
                assert {w["site_key"] for w in body["wrappers"]} == {
                    "shop/name",
                    "shop/price",
                }
                status2, _, body2 = await raw_request(
                    host, port, b"DELETE /wrappers/shop%2Fname HTTP/1.1\r\n\r\n"
                )
                assert status2 == 200 and body2["deleted"] == "shop/name"
                status3, _, _ = await raw_request(
                    host, port, b"GET /wrappers/shop%2Fname HTTP/1.1\r\n\r\n"
                )
                assert status3 == 404

        run(go())


class TestConfig:
    def test_invalid_net_config_rejected(self):
        with pytest.raises(ValueError):
            NetConfig(max_body_bytes=0)
        with pytest.raises(ValueError):
            NetConfig(max_header_bytes=8)

    def test_double_start_rejected(self):
        async def go():
            async with WrapperHTTPServer(WrapperClient()) as server:
                with pytest.raises(RuntimeError, match="already started"):
                    await server.start()

        run(go())

"""The parse-cache tier: content-hash hits and misses, byte-budget
eviction, no stale extraction after redeploys, and /metrics counters
matching observed traffic."""

import asyncio
import json

from repro import Sample, WrapperClient, mark_volatile, parse_html
from repro.dom.parser import parse_html as _parse
from repro.runtime.net import WrapperHTTPServer
from repro.runtime.serve import ParseCache, ServingConfig, serve_jobs_sync
from repro.runtime.extractor import PageJob

PAGE_A = """
<html><body>
<div class="a"><h1 itemprop="name">Alpha</h1><span class="price">10</span></div>
</body></html>
"""

PAGE_B = """
<html><body>
<div class="b"><h2 itemprop="name">Beta</h2><span class="price">20</span></div>
</body></html>
"""

TITLE = 'descendant::*[@itemprop="name"]'
PRICE = 'descendant::span[@class="price"]'


def job(page_id, html, *wrappers):
    return PageJob(page_id=page_id, html=html, wrappers=tuple(wrappers))


def run(coro):
    return asyncio.run(coro)


#: Serving config where every request is its own dispatch batch, so the
#: coalescer cannot mask what the cross-batch cache does.
def per_request_config(**overrides):
    return ServingConfig(max_batch_pages=1, **overrides)


class TestParseCacheUnit:
    def test_identical_html_hits_mutated_html_misses(self):
        cache = ParseCache(capacity_bytes=1 << 20)
        doc = _parse(PAGE_A)
        assert cache.get(PAGE_A) is None  # cold
        cache.put(PAGE_A, doc)
        assert cache.get(PAGE_A) is doc  # same bytes: same document
        # One mutated character is a different content hash: a miss,
        # never a stale document.
        assert cache.get(PAGE_A.replace("Alpha", "Alpha!")) is None
        info = cache.info()
        assert (info.hits, info.misses, info.entries) == (1, 2, 1)

    def test_eviction_under_byte_budget_is_lru(self):
        pages = [f"<html><body><p>page {i:04d}</p></body></html>" for i in range(4)]
        size = len(pages[0].encode())
        cache = ParseCache(capacity_bytes=3 * size)
        for page in pages[:3]:
            assert cache.put(page, _parse(page)) == 0  # fits
        assert cache.get(pages[0]) is not None  # 0 is now most recent
        evicted = cache.put(pages[3], _parse(pages[3]))
        assert evicted == 1
        info = cache.info()
        assert info.evictions == 1
        assert info.bytes <= info.capacity_bytes
        # LRU order: page 1 (least recently touched) was the victim.
        assert cache.get(pages[1]) is None
        assert cache.get(pages[0]) is not None
        assert cache.get(pages[3]) is not None

    def test_page_larger_than_the_budget_is_served_uncached(self):
        cache = ParseCache(capacity_bytes=16)
        assert cache.put(PAGE_A, _parse(PAGE_A)) == 0
        assert cache.info().entries == 0

    def test_clear_resets_entries_and_bytes(self):
        cache = ParseCache(capacity_bytes=1 << 20)
        cache.put(PAGE_A, _parse(PAGE_A))
        cache.clear()
        info = cache.info()
        assert (info.entries, info.bytes) == (0, 0)


class TestServingIntegration:
    def test_repeated_page_across_batches_parses_once(self):
        n = 6
        requests = [job(f"site-{i}@0", PAGE_A, ("t", TITLE)) for i in range(n)]
        results, stats = serve_jobs_sync(requests, per_request_config(), concurrency=1)
        assert all(records[0].values == ("Alpha",) for records in results)
        assert stats.pages_parsed == 1  # the cold request
        assert stats.parse_cache_hits == n - 1
        assert stats.parses_avoided == n - 1

    def test_disabled_cache_parses_every_request(self):
        n = 4
        requests = [job(f"site-{i}@0", PAGE_A, ("t", TITLE)) for i in range(n)]
        _, stats = serve_jobs_sync(
            requests, per_request_config(parse_cache_bytes=0), concurrency=1
        )
        assert stats.pages_parsed == n
        assert stats.parse_cache_hits == 0

    def test_mutated_page_misses_and_serves_fresh_content(self):
        requests = [
            job("site-a@0", PAGE_A, ("t", TITLE)),
            job("site-a@1", PAGE_B, ("t", TITLE)),  # re-rendered page
        ]
        results, stats = serve_jobs_sync(requests, per_request_config(), concurrency=1)
        assert results[0][0].values == ("Alpha",)
        assert results[1][0].values == ("Beta",)
        assert stats.pages_parsed == 2

    def test_cached_page_serves_new_wrappers_not_stale_results(self):
        # A redeploy swaps the wrappers, not the page: the second
        # request hits the cached document and must evaluate the *new*
        # query against it.
        requests = [
            job("site-a@0", PAGE_A, ("w", TITLE)),
            job("site-a@0", PAGE_A, ("w", PRICE)),
        ]
        results, stats = serve_jobs_sync(requests, per_request_config(), concurrency=1)
        assert results[0][0].values == ("Alpha",)
        assert results[1][0].values == ("10",)
        assert stats.parse_cache_hits == 1

    def test_eviction_counter_reaches_server_stats(self):
        pages = [
            f"<html><body><p itemprop='name'>page {i:06d}</p></body></html>" * 40
            for i in range(4)
        ]
        budget = 2 * len(pages[0].encode()) + 1
        requests = [job(f"site-{i}@0", page, ("t", TITLE)) for i, page in enumerate(pages)]
        _, stats = serve_jobs_sync(
            requests,
            per_request_config(parse_cache_bytes=budget),
            concurrency=1,
        )
        assert stats.pages_parsed == 4  # all distinct
        assert stats.parse_cache_evictions >= 1


TITLE_PAGE = """
<html><body>
<div class="item"><h1 class="name">Alpha</h1><span class="price">10</span></div>
</body></html>
"""


def deployed_client() -> WrapperClient:
    client = WrapperClient()
    doc = parse_html(TITLE_PAGE)
    name = doc.find(tag="h1", class_="name")
    price = doc.find(tag="span", class_="price")
    mark_volatile(name, price)
    client.induce("shop/name", [Sample(doc, [name])])
    client.induce("shop/price", [Sample(doc, [price])])
    return client


async def raw_request(host, port, payload: bytes):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(payload)
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, value = line.split(":", 1)
                headers[name.strip().lower()] = value.strip()
        body = await reader.readexactly(int(headers["content-length"]))
        return status, headers, json.loads(body)
    finally:
        writer.close()


def post(path: str, payload: dict) -> bytes:
    body = json.dumps(payload).encode()
    return (
        f"POST {path} HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n"
    ).encode() + body


class TestMetricsSurface:
    def test_metrics_counters_match_observed_traffic(self):
        n = 5
        config = None  # default NetConfig: thread-mode serving, cache on

        async def go():
            from repro.runtime.net import NetConfig
            from repro.runtime.serve import ServingConfig as SC

            net = NetConfig(serving=SC(max_batch_pages=1))
            async with WrapperHTTPServer(deployed_client(), net) as server:
                host, port = server.address
                for _ in range(n):
                    status, _, body = await raw_request(
                        host, port,
                        post("/extract", {"site_key": "shop/name", "html": TITLE_PAGE}),
                    )
                    assert status == 200
                    assert body["values"] == ["Alpha"]
                status, _, metrics = await raw_request(
                    host, port, b"GET /metrics HTTP/1.1\r\n\r\n"
                )
                assert status == 200
                return metrics

        del config
        metrics = run(go())
        cache = metrics["parse_cache"]
        # Serial requests: the first parse is the only miss; every
        # repeat is a hit. The serving stats must agree with the cache.
        assert cache["misses"] == 1
        assert cache["hits"] == n - 1
        assert cache["entries"] == 1
        assert cache["evictions"] == 0
        assert metrics["serving"]["pages_parsed"] == 1
        assert metrics["serving"]["parses_avoided"] == n - 1

    def test_no_stale_extraction_after_artifact_redeploy(self):
        async def go():
            client = deployed_client()
            async with WrapperHTTPServer(client) as server:
                host, port = server.address
                payload = post(
                    "/extract", {"site_key": "shop/name", "html": TITLE_PAGE}
                )
                _, _, before = await raw_request(host, port, payload)
                assert before["values"] == ["Alpha"]
                # Redeploy shop/name to target the price node instead.
                doc = parse_html(TITLE_PAGE)
                price = doc.find(tag="span", class_="price")
                client.induce("shop/name", [Sample(doc, [price])])
                # Same page bytes — the document comes from the cache —
                # but the redeployed wrapper must drive the answer.
                _, _, after = await raw_request(host, port, payload)
                assert after["values"] == ["10"]

        run(go())

"""Artifact losslessness: save → load → identical extraction.

The acceptance bar for the runtime layer: a JSON round trip must not
change what a wrapper extracts.  Verified here over *every* single-node
corpus task (covering every corpus site page) and a slice of the
multi-node dataset — top query and all ensemble members alike.
"""

import json

import pytest

from repro.dom.builder import E, document
from repro.induction import QuerySample, WrapperInducer
from repro.runtime import ARTIFACT_VERSION, ArtifactError, StoredSample, WrapperArtifact
from repro.sites import multi_node_tasks, single_node_tasks
from repro.xpath.compile import evaluate_compiled

INDUCER = WrapperInducer(k=10)

ROUND_TRIP_TASKS = single_node_tasks() + multi_node_tasks(limit=8)


def _build_artifact(corpus_task):
    from repro.runtime import snapshot0_annotation

    doc, targets = snapshot0_annotation(corpus_task)
    result = INDUCER.induce_one(doc, targets)
    artifact = WrapperArtifact.from_induction(
        result,
        [QuerySample(doc, targets)],
        task_id=corpus_task.task_id,
        site_id=corpus_task.spec.site_id,
        role=corpus_task.task.role,
    )
    return artifact, doc, targets


class TestRoundTripLossless:
    @pytest.mark.parametrize("corpus_task", ROUND_TRIP_TASKS, ids=lambda t: t.task_id)
    def test_reloaded_wrapper_selects_identical_node_sets(self, corpus_task):
        artifact, doc, targets = _build_artifact(corpus_task)
        reloaded = WrapperArtifact.loads(artifact.dumps())
        assert reloaded == artifact  # full dataclass equality, not just queries
        for before, after in zip(artifact.all_queries(), reloaded.all_queries()):
            assert before == after
            ids_before = {id(n) for n in evaluate_compiled(before, doc.root, doc)}
            ids_after = {id(n) for n in evaluate_compiled(after, doc.root, doc)}
            assert ids_before == ids_after
        # The top query still extracts exactly the annotated targets.
        top = evaluate_compiled(reloaded.best_query(), doc.root, doc)
        assert {id(n) for n in top} == {id(n) for n in targets}
        # Ensemble members survive the round trip as an executable committee.
        votes = reloaded.ensemble_wrapper().select(doc)
        assert {id(n) for n in votes} == {id(n) for n in targets}

    def test_loaded_artifact_carries_compiled_plans(self):
        artifact, doc, targets = _build_artifact(ROUND_TRIP_TASKS[0])
        reloaded = WrapperArtifact.loads(artifact.dumps())
        plans = reloaded.extraction_plans()
        # Every deployed wrapper text — best + committee — has a plan,
        # compiled eagerly at load (memoized: same mapping every call).
        assert set(plans) == {reloaded.best.text, *reloaded.ensemble}
        assert reloaded.extraction_plans() is plans
        plan = plans[reloaded.best.text]
        assert {id(n) for n in plan.run(doc.root, doc)} == {id(n) for n in targets}

    def test_single_task_set_covers_every_corpus_site(self):
        """Guards the claim above: the single-node dataset touches every page."""
        sites = {t.spec.site_id for t in single_node_tasks()}
        from repro.sites import build_corpus

        assert sites == {spec.site_id for spec in build_corpus()}


class TestStoredSamples:
    @pytest.fixture(scope="class")
    def artifact_doc_targets(self):
        return _build_artifact(single_node_tasks(limit=1)[0])

    def test_samples_restore_to_equivalent_annotations(self, artifact_doc_targets):
        artifact, doc, targets = artifact_doc_targets
        (restored,) = WrapperArtifact.loads(artifact.dumps()).restore_samples()
        assert len(restored.targets) == len(targets)
        # Targets re-locate to structurally identical nodes (same canonical
        # paths, same normalized text) on the reparsed page.
        for original, relocated in zip(targets, restored.targets):
            assert doc.normalized_text(original) == relocated.normalized_text()

    def test_volatile_marking_survives_restore(self, artifact_doc_targets):
        artifact, doc, _ = artifact_doc_targets
        (restored,) = artifact.restore_samples()
        from repro.dom.node import TextNode

        marked = [
            n
            for n in restored.doc.root.descendants()
            if isinstance(n, TextNode) and n.meta.get("volatile")
        ]
        assert marked, "no volatile text re-marked on the restored page"

    def test_custom_volatile_key_round_trips(self):
        """A customized InductionConfig.volatile_meta_key must survive
        serialization: restore re-marks under the key the config reads."""
        from repro.dom.builder import E, T, document
        from repro.dom.node import TextNode

        data = T("churning data value")
        data.meta["data_mark"] = True
        doc = document(E("html", E("body", E("span", "label"), E("p", data))))
        target = doc.find(tag="span")
        stored = StoredSample.from_sample(
            QuerySample(doc, [target]), volatile_meta_key="data_mark"
        )
        reloaded = StoredSample.from_payload(stored.to_payload())
        assert reloaded.volatile_key == "data_mark"
        restored = reloaded.restore()
        marked = [
            n
            for n in restored.doc.root.descendants()
            if isinstance(n, TextNode) and n.meta.get("data_mark")
        ]
        assert [n.text for n in marked] == ["churning data value"]

    def test_queries_come_from_the_export_hook(self, artifact_doc_targets):
        """from_induction serializes through InductionResult.export, so the
        two representations cannot drift apart."""
        artifact, doc, targets = artifact_doc_targets
        exported = INDUCER.induce_one(doc, targets).export(limit=len(artifact.queries))
        assert len(exported) == len(artifact.queries)
        for ranked, entry in zip(artifact.queries, exported):
            assert ranked.to_payload() == {
                key: value for key, value in entry.items() if key != "f_beta"
            }

    def test_reinduction_from_restored_sample_stays_accurate(self, artifact_doc_targets):
        """A wrapper induced from the *restored* sample must still extract
        exactly the stored targets — the repair loop depends on it."""
        artifact, _, _ = artifact_doc_targets
        (restored,) = artifact.restore_samples()
        best = INDUCER.induce([restored]).best
        assert best is not None
        matches = evaluate_compiled(best.query, restored.doc.root, restored.doc)
        assert {id(n) for n in matches} == {id(n) for n in restored.targets}


class TestValidation:
    def test_unknown_version_is_rejected(self):
        artifact, _, _ = _build_artifact(single_node_tasks(limit=1)[0])
        payload = artifact.to_payload()
        payload["version"] = ARTIFACT_VERSION + 1
        with pytest.raises(ArtifactError, match="version"):
            WrapperArtifact.from_payload(payload)

    def test_invalid_json_is_rejected(self):
        with pytest.raises(ArtifactError, match="JSON"):
            WrapperArtifact.loads("{not json")

    def test_missing_fields_are_rejected(self):
        with pytest.raises(ArtifactError):
            WrapperArtifact.from_payload({"version": ARTIFACT_VERSION})

    def test_malformed_query_is_rejected_at_load(self):
        artifact, _, _ = _build_artifact(single_node_tasks(limit=1)[0])
        payload = json.loads(artifact.dumps())
        payload["queries"][0]["query"] = "descendant::[["
        with pytest.raises(Exception):
            WrapperArtifact.from_payload(payload)

    def test_ambiguous_target_path_is_rejected_at_build(self):
        doc = document(E("html", E("body", E("p", "a"), E("p", "b"))))
        target = doc.find(tag="p")
        sample = QuerySample(doc, [target])
        stored = StoredSample.from_sample(sample)
        # Corrupt the path so it matches both <p> elements.
        broken = StoredSample(
            html=stored.html,
            target_paths=("/child::html[1]/child::body[1]/child::p",),
        )
        with pytest.raises(ArtifactError, match="selects 2 nodes"):
            broken.restore()

    def test_out_of_range_quorum_is_rejected(self):
        artifact, _, _ = _build_artifact(single_node_tasks(limit=1)[0])
        payload = json.loads(artifact.dumps())
        for bad in (0, -1, len(artifact.ensemble) + 1):
            payload["ensemble"]["quorum"] = bad
            with pytest.raises(ArtifactError, match="quorum"):
                WrapperArtifact.from_payload(payload)

    def test_non_root_context_samples_are_rejected(self):
        """The serving stack always evaluates from the document node, so
        non-root-context samples cannot be packaged into artifacts."""
        doc = document(E("html", E("body", E("div", E("span", "x")))))
        context = doc.find(tag="div")
        target = doc.find(tag="span")
        result = INDUCER.induce_one(doc, [target], context=context)
        with pytest.raises(ArtifactError, match="document-node"):
            WrapperArtifact.from_induction(
                result,
                [QuerySample(doc, [target], context)],
                task_id="t/ctx",
                site_id="t",
            )

    def test_save_load_file_round_trip(self, tmp_path):
        artifact, _, _ = _build_artifact(single_node_tasks(limit=1)[0])
        path = tmp_path / artifact.filename()
        artifact.save(path)
        assert WrapperArtifact.load(path) == artifact

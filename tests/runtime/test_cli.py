"""The ``python -m repro.runtime`` CLI: induce → extract → check."""

import json

import pytest

from repro.runtime.cli import main


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("artifacts")
    assert main(["induce", "--out", str(out), "--limit", "3"]) == 0
    return out


class TestInduce:
    def test_writes_one_artifact_per_task(self, artifact_dir):
        assert len(list(artifact_dir.glob("*.json"))) == 3

    def test_artifacts_are_loadable(self, artifact_dir):
        from repro.runtime import WrapperArtifact

        for path in artifact_dir.glob("*.json"):
            artifact = WrapperArtifact.load(path)
            assert artifact.queries and artifact.samples

    def test_specific_task_selection(self, tmp_path, capsys):
        out = tmp_path / "one"
        assert main(["induce", "--out", str(out), "--task", "movies-0/director"]) == 0
        assert [p.name for p in out.glob("*.json")] == ["movies-0__director.json"]
        assert "movies-0/director" in capsys.readouterr().out

    def test_unknown_task_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["induce", "--out", str(tmp_path), "--task", "no-such/task"])


class TestExtract:
    def test_extracts_against_later_snapshot(self, artifact_dir, tmp_path, capsys):
        records_path = tmp_path / "records.json"
        rc = main(
            [
                "extract",
                "--artifacts",
                str(artifact_dir),
                "--snapshot",
                "1",
                "--workers",
                "2",
                "--json",
                str(records_path),
            ]
        )
        assert rc == 0
        records = json.loads(records_path.read_text())
        assert records
        assert {"page_id", "wrapper_id", "paths", "values"} <= records[0].keys()
        assert "(wrapper, page) pairs" in capsys.readouterr().out

    def test_empty_artifact_dir_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="no artifacts"):
            main(["extract", "--artifacts", str(tmp_path / "nothing_here")])


class TestCheck:
    def test_reports_health_over_snapshots(self, artifact_dir, capsys):
        rc = main(
            ["check", "--artifacts", str(artifact_dir), "--snapshots", "6", "--repair"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrappers checked over 5 snapshots" in out

    def test_drifting_wrapper_is_repaired(self, tmp_path, capsys):
        out_dir = tmp_path / "weather"
        repaired_dir = tmp_path / "repaired"
        assert main(["induce", "--out", str(out_dir), "--task", "weather-1/temp"]) == 0
        rc = main(
            [
                "check",
                "--artifacts",
                str(out_dir),
                "--snapshots",
                "16",
                "--repair",
                "--out",
                str(repaired_dir),
            ]
        )
        assert rc == 0
        output = capsys.readouterr().out
        assert "DRIFT weather-1/temp" in output
        assert "repaired (gen 1)" in output
        from repro.runtime import WrapperArtifact

        (path,) = repaired_dir.glob("*.json")
        assert WrapperArtifact.load(path).generation == 1

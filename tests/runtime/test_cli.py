"""The ``python -m repro.runtime`` CLI: induce → extract → check →
serve → sweep, including the documented exit codes."""

import json

import pytest

from repro.runtime.cli import EXIT_DRIFT, EXIT_OK, main


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("artifacts")
    assert main(["induce", "--out", str(out), "--limit", "3"]) == 0
    return out


def test_main_module_import_is_side_effect_free():
    """Spawn-started pool workers re-import the parent's main module;
    ``repro.runtime.__main__`` must not run the CLI on bare import
    (only under ``__name__ == "__main__"``)."""
    import importlib
    import sys

    sys.modules.pop("repro.runtime.__main__", None)
    importlib.import_module("repro.runtime.__main__")  # must not SystemExit


class TestInduce:
    def test_writes_one_artifact_per_task(self, artifact_dir):
        assert len(list(artifact_dir.glob("*.json"))) == 3

    def test_artifacts_are_loadable(self, artifact_dir):
        from repro.runtime import WrapperArtifact

        for path in artifact_dir.glob("*.json"):
            artifact = WrapperArtifact.load(path)
            assert artifact.queries and artifact.samples

    def test_specific_task_selection(self, tmp_path, capsys):
        out = tmp_path / "one"
        assert main(["induce", "--out", str(out), "--task", "movies-0/director"]) == 0
        assert [p.name for p in out.glob("*.json")] == ["movies-0__director.json"]
        assert "movies-0/director" in capsys.readouterr().out

    def test_unknown_task_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["induce", "--out", str(tmp_path), "--task", "no-such/task"])


class TestExtract:
    def test_extracts_against_later_snapshot(self, artifact_dir, tmp_path, capsys):
        records_path = tmp_path / "records.json"
        rc = main(
            [
                "extract",
                "--artifacts",
                str(artifact_dir),
                "--snapshot",
                "1",
                "--workers",
                "2",
                "--json",
                str(records_path),
            ]
        )
        assert rc == 0
        records = json.loads(records_path.read_text())
        assert records
        assert {"page_id", "wrapper_id", "paths", "values"} <= records[0].keys()
        assert "(wrapper, page) pairs" in capsys.readouterr().out

    def test_empty_artifact_dir_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="no artifacts"):
            main(["extract", "--artifacts", str(tmp_path / "nothing_here")])


class TestCheck:
    def test_healthy_fleet_exits_zero(self, artifact_dir, capsys):
        rc = main(
            ["check", "--artifacts", str(artifact_dir), "--snapshots", "6", "--repair"]
        )
        assert rc == EXIT_OK
        out = capsys.readouterr().out
        assert "wrappers checked over 5 snapshots" in out

    def test_drifting_wrapper_is_repaired_and_exits_nonzero(self, tmp_path, capsys):
        out_dir = tmp_path / "weather"
        repaired_dir = tmp_path / "repaired"
        assert main(["induce", "--out", str(out_dir), "--task", "weather-1/temp"]) == 0
        rc = main(
            [
                "check",
                "--artifacts",
                str(out_dir),
                "--snapshots",
                "16",
                "--repair",
                "--out",
                str(repaired_dir),
            ]
        )
        # Drift was detected: CI gates on a non-zero exit even though
        # the repair succeeded (exit 1 = drift, 3 = failed repairs).
        assert rc == EXIT_DRIFT
        output = capsys.readouterr().out
        assert "DRIFT weather-1/temp" in output
        assert "repaired (gen 1)" in output
        from repro.runtime import WrapperArtifact

        (path,) = repaired_dir.glob("*.json")
        assert WrapperArtifact.load(path).generation == 1


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli-store") / "store"
    rc = main(
        [
            "induce",
            "--store",
            str(root),
            "--shards",
            "4",
            "--task",
            "academic-0/scholar",
            "--task",
            "weather-1/temp",
        ]
    )
    assert rc == 0
    return root


class TestStoreWorkflow:
    def test_induce_populates_shards(self, store_dir):
        from repro.runtime import ShardedArtifactStore

        store = ShardedArtifactStore(store_dir)
        assert store.task_ids() == ["academic-0/scholar", "weather-1/temp"]

    def test_extract_reads_store_layout(self, store_dir, capsys):
        rc = main(["extract", "--artifacts", str(store_dir), "--snapshot", "1"])
        assert rc == 0
        assert "(wrapper, page) pairs" in capsys.readouterr().out

    def test_reopen_existing_store_without_shards_flag(self, tmp_path):
        """Appending to an existing store must not require re-passing
        the original --shards (the store records its shard count)."""
        root = tmp_path / "s"
        assert (
            main(
                ["induce", "--store", str(root), "--shards", "4",
                 "--task", "academic-0/scholar"]
            )
            == 0
        )
        assert (
            main(["induce", "--store", str(root), "--task", "academic-1/scholar"])
            == 0
        )
        from repro.runtime import ShardedArtifactStore

        store = ShardedArtifactStore(root)
        assert store.n_shards == 4
        assert len(store.task_ids()) == 2

    def test_conflicting_shards_flag_is_a_clean_error(self, tmp_path):
        root = tmp_path / "s2"
        assert (
            main(
                ["induce", "--store", str(root), "--shards", "4",
                 "--task", "academic-0/scholar"]
            )
            == 0
        )
        with pytest.raises(SystemExit, match="re-sharding"):
            main(
                ["induce", "--store", str(root), "--shards", "8",
                 "--task", "academic-1/scholar"]
            )

    def test_out_and_store_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "induce",
                    "--out",
                    str(tmp_path),
                    "--store",
                    str(tmp_path),
                    "--limit",
                    "1",
                ]
            )


class TestServe:
    def test_serves_request_stream_with_stats(self, store_dir, tmp_path, capsys):
        stats_path = tmp_path / "serve.json"
        rc = main(
            [
                "serve",
                "--artifacts",
                str(store_dir),
                "--snapshot",
                "1",
                "--concurrency",
                "4",
                "--json",
                str(stats_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "requests over" in out and "requests/s" in out
        stats = json.loads(stats_path.read_text())
        assert stats["stats"]["requests"] == stats["requests"]
        assert stats["stats"]["coalesced_requests"] > 0


class TestServeListen:
    def test_parse_listen_accepts_host_port(self):
        from repro.runtime.cli import _parse_listen

        assert _parse_listen("127.0.0.1:8080") == ("127.0.0.1", 8080)
        assert _parse_listen("0.0.0.0:0") == ("0.0.0.0", 0)
        for bad in ("8080", "host:", "host:notaport", ":1"):
            with pytest.raises(SystemExit):
                _parse_listen(bad)

    def test_client_for_listen_backends(self, store_dir, artifact_dir, tmp_path):
        from repro.runtime.cli import _client_for_listen

        fresh = _client_for_listen(None)
        assert fresh.store is None and len(fresh) == 0

        store_backed = _client_for_listen(str(store_dir))
        assert store_backed.store is not None
        assert "weather-1/temp" in store_backed

        preloaded = _client_for_listen(str(artifact_dir))
        assert preloaded.store is None and len(preloaded) == 3

        created = _client_for_listen(str(tmp_path / "new-store"))
        assert created.store is not None and len(created) == 0

    def test_serve_without_artifacts_or_listen_fails(self):
        with pytest.raises(SystemExit, match="--artifacts"):
            main(["serve"])


class TestSweep:
    def test_sweep_detects_drift_and_gates(self, store_dir, capsys):
        rc = main(["sweep", "--store", str(store_dir), "--snapshots", "10"])
        assert rc == EXIT_DRIFT
        out = capsys.readouterr().out
        assert "DRIFT weather-1/temp" in out
        assert "repaired x1" in out

    def test_fail_on_repair_tolerates_repaired_drift(self, store_dir):
        rc = main(
            [
                "sweep",
                "--store",
                str(store_dir),
                "--snapshots",
                "10",
                "--fail-on",
                "repair",
            ]
        )
        assert rc == EXIT_OK

    def test_sweep_requires_a_store(self, tmp_path):
        with pytest.raises(SystemExit, match="not a sharded artifact store"):
            main(["sweep", "--store", str(tmp_path)])

"""Traffic-hardening primitives, tested without a socket.

The key table, quota config, token-bucket limiter, in-flight gauge,
metrics counters, and access log are all plain synchronous objects —
the bounded-state guarantees (the LRU caps that keep a scan of dead
tenants from growing server memory) are asserted here exactly, with
10k distinct tenants.
"""

import io
import json

import pytest

from repro.runtime.auth import (
    AccessLog,
    ApiKeyTable,
    AuthConfigError,
    DEFAULT_MAX_TENANTS,
    InflightGauge,
    NetMetrics,
    QuotaConfig,
    TenantRateLimiter,
    WILDCARD_TENANT,
)


class TestApiKeyTable:
    def test_parses_keys_comments_and_blanks(self):
        table = ApiKeyTable.from_lines(
            [
                "# ops",
                "",
                "k-admin-3f9c2a7e  *",
                "k-acme-71b2c9d4   acme   # acme's key",
                "k-default-90aa17ce",
            ]
        )
        assert len(table) == 3
        assert table.tenant_for("k-admin-3f9c2a7e") == WILDCARD_TENANT
        assert table.tenant_for("k-acme-71b2c9d4") == "acme"
        assert table.tenant_for("k-default-90aa17ce") == ""
        assert table.tenant_for("k-unknown-11111111") is None

    def test_from_file_roundtrip(self, tmp_path):
        path = tmp_path / "keys.txt"
        path.write_text("k-file-12345678 zenith\n")
        table = ApiKeyTable.from_file(path)
        assert table.tenant_for("k-file-12345678") == "zenith"

    def test_missing_file_is_config_error(self, tmp_path):
        with pytest.raises(AuthConfigError, match="cannot read"):
            ApiKeyTable.from_file(tmp_path / "nope.txt")

    @pytest.mark.parametrize(
        "line,match",
        [
            ("short *", "shorter than 8"),
            ("k-too-many-fields a b", "expected"),
            ("k-bad-tenant-1234 not::ok", "tenant"),
        ],
    )
    def test_malformed_lines_rejected_with_location(self, line, match):
        with pytest.raises(AuthConfigError, match=match) as err:
            ApiKeyTable.from_lines([line], source="keys.txt")
        assert "keys.txt:1" in str(err.value)

    def test_duplicate_key_rejected(self):
        with pytest.raises(AuthConfigError, match="duplicate"):
            ApiKeyTable.from_lines(["k-dup-12345678 a", "k-dup-12345678 b"])

    def test_empty_table_rejected(self):
        with pytest.raises(AuthConfigError, match="at least one"):
            ApiKeyTable.from_lines(["# only comments"])


class TestQuotaConfig:
    def test_defaults_are_disabled(self):
        quota = QuotaConfig()
        assert not quota.enabled

    def test_effective_burst(self):
        assert QuotaConfig(rate=5.0).effective_burst == 5.0
        assert QuotaConfig(rate=5.0, burst=20).effective_burst == 20.0
        # A sub-1/s rate still admits one request per bucket.
        assert QuotaConfig(rate=0.25).effective_burst == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": -1.0},
            {"burst": -1},
            {"max_inflight": -1},
            {"max_tenants": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(AuthConfigError):
            QuotaConfig(**kwargs)


class TestTenantRateLimiter:
    def test_burst_then_throttle_then_refill(self):
        limiter = TenantRateLimiter(rate=1.0, burst=2.0)
        assert limiter.acquire("t", now=0.0) == (True, 0.0)
        assert limiter.acquire("t", now=0.0) == (True, 0.0)
        allowed, retry_after = limiter.acquire("t", now=0.0)
        assert not allowed and retry_after == pytest.approx(1.0)
        # One second later one token has refilled.
        assert limiter.acquire("t", now=1.0) == (True, 0.0)

    def test_tenants_are_independent(self):
        limiter = TenantRateLimiter(rate=1.0, burst=1.0)
        assert limiter.acquire("a", now=0.0)[0]
        assert not limiter.acquire("a", now=0.0)[0]
        assert limiter.acquire("b", now=0.0)[0]

    def test_state_is_lru_bounded_under_tenant_scan(self):
        """The headline leak test: 10k distinct (dead) tenants must
        recycle a fixed pool, never grow the bucket map past the cap."""
        cap = 64
        limiter = TenantRateLimiter(rate=1.0, burst=1.0, max_tenants=cap)
        for i in range(10_000):
            limiter.acquire(f"scan-{i}", now=float(i) * 1e-3)
        assert len(limiter) <= cap
        assert limiter.evictions == 10_000 - cap

    def test_eviction_is_lru_not_fifo(self):
        limiter = TenantRateLimiter(rate=1.0, burst=5.0, max_tenants=2)
        limiter.acquire("old", now=0.0)
        limiter.acquire("kept", now=0.0)
        limiter.acquire("old", now=1.0)  # refresh recency
        limiter.acquire("new", now=2.0)  # evicts "kept", not "old"
        limiter.acquire("old", now=2.0)
        assert len(limiter) == 2
        # "old" kept its bucket state: two tokens already spent.
        assert limiter.acquire("old", now=2.0)[0] is True

    def test_invalid_construction_rejected(self):
        with pytest.raises(AuthConfigError):
            TenantRateLimiter(rate=0.0, burst=1.0)
        with pytest.raises(AuthConfigError):
            TenantRateLimiter(rate=1.0, burst=0.0)
        with pytest.raises(AuthConfigError):
            TenantRateLimiter(rate=1.0, burst=1.0, max_tenants=0)


class TestInflightGauge:
    def test_cap_and_release(self):
        gauge = InflightGauge(max_inflight=2)
        assert gauge.try_enter("t")
        assert gauge.try_enter("t")
        assert not gauge.try_enter("t")
        gauge.leave("t")
        assert gauge.try_enter("t")

    def test_bounded_by_construction(self):
        """Entries exist only while a tenant is in flight — a scan of
        distinct tenants that enter and leave holds no state at all."""
        gauge = InflightGauge(max_inflight=4)
        for i in range(10_000):
            tenant = f"scan-{i}"
            assert gauge.try_enter(tenant)
            gauge.leave(tenant)
        assert len(gauge) == 0

    def test_leave_of_unknown_tenant_is_noop(self):
        gauge = InflightGauge(max_inflight=1)
        gauge.leave("never-entered")
        assert len(gauge) == 0


class TestNetMetrics:
    def test_counters_and_payload(self):
        metrics = NetMetrics()
        for status in (200, 200, 401, 403, 429, 421, 500):
            metrics.observe("acme", status)
        payload = metrics.as_payload()
        assert payload["requests_total"] == 7
        assert payload["by_status"]["200"] == 2
        assert payload["auth"] == {
            "unauthorized_401": 1,
            "forbidden_403": 1,
            "rate_limited_429": 1,
        }
        assert payload["rejected_unowned_421"] == 1
        acme = payload["tenants"]["acme"]
        assert acme == {"requests": 7, "errors": 5, "rate_limited": 1}
        assert payload["tenant_state"]["cap"] == DEFAULT_MAX_TENANTS

    def test_per_tenant_map_is_lru_bounded(self):
        metrics = NetMetrics(max_tenants=32)
        for i in range(10_000):
            metrics.observe(f"scan-{i}", 200)
        payload = metrics.as_payload()
        assert len(payload["tenants"]) <= 32
        assert payload["tenant_state"]["tracked"] <= 32
        assert payload["tenant_state"]["evictions"] == 10_000 - 32
        # Aggregates keep counting across evictions.
        assert payload["requests_total"] == 10_000


class TestAccessLog:
    def test_emits_jsonl_records(self):
        stream = io.StringIO()
        log = AccessLog(stream=stream)
        log.emit("acme", "POST /extract", 200, 12.3456, coalesced=True)
        log.emit("", "GET /healthz", 200, 0.5)
        lines = stream.getvalue().splitlines()
        first = json.loads(lines[0])
        assert first["tenant"] == "acme"
        assert first["verb"] == "POST /extract"
        assert first["status"] == 200
        assert first["latency_ms"] == 12.346
        assert first["coalesced"] is True
        assert first["ts"] > 0
        second = json.loads(lines[1])
        assert second["coalesced"] is False
        assert log.errors == 0

    def test_emit_never_raises_on_a_dead_stream(self):
        stream = io.StringIO()
        stream.close()
        log = AccessLog(stream=stream)
        log.emit("t", "GET /wrappers", 200, 1.0)
        assert log.errors == 1

    def test_open_appends_and_close(self, tmp_path):
        path = tmp_path / "logs" / "access.jsonl"
        log = AccessLog.open(path)
        log.emit("t", "GET /metrics", 200, 1.0)
        log.close()
        log2 = AccessLog.open(path)
        log2.emit("t", "GET /metrics", 200, 2.0)
        log2.close()
        assert len(path.read_text().splitlines()) == 2

"""Drift signals and automatic re-induction on archive scenarios.

The scenarios are seeded corpus sites known to exercise each signal;
the tests scan a bounded snapshot range rather than pinning exact
indices, so they survive intentional ranking changes while still
failing if the detector goes blind.
"""

import pytest

from repro.evolution import SyntheticArchive
from repro.induction import QuerySample, WrapperInducer
from repro.metrics import wrapper_matches_targets
from repro.runtime import DriftConfig, DriftDetector, WrapperArtifact, reinduce
from repro.runtime.drift import CANONICAL_CHANGE, EMPTY_RESULT, ENSEMBLE_DISAGREEMENT
from repro.runtime.artifact import ArtifactError
from repro.sites import single_node_tasks

TASKS = {t.task_id: t for t in single_node_tasks()}


def induce_artifact(task_id: str, n_snapshots: int):
    corpus_task = TASKS[task_id]
    archive = SyntheticArchive(corpus_task.spec, n_snapshots=n_snapshots)
    doc = archive.snapshot(0)
    targets = archive.targets(doc, corpus_task.task.role)
    result = WrapperInducer(k=10).induce_one(doc, targets)
    artifact = WrapperArtifact.from_induction(
        result,
        [QuerySample(doc, targets)],
        task_id=task_id,
        site_id=corpus_task.spec.site_id,
        role=corpus_task.task.role,
    )
    return artifact, archive, corpus_task


def first_drift(artifact, archive, corpus_task, detector, last):
    for index in range(1, last):
        if archive.is_broken(index):
            continue
        doc = archive.snapshot(index)
        if not archive.targets(doc, corpus_task.task.role):
            break
        report = detector.check(artifact, doc, snapshot=index)
        if report.drifted:
            return report, doc
    return None, None


class TestHealthy:
    def test_snapshot0_is_healthy(self):
        artifact, archive, _ = induce_artifact("movies-0/director", 1)
        report = DriftDetector().check(artifact, archive.snapshot(0))
        assert report.healthy and not report.drifted
        assert report.result_count == 1
        assert report.member_count >= 1

    def test_attribute_valued_wrapper_is_checkable(self):
        """A wrapper whose query selects attribute nodes must fingerprint
        cleanly (canonical paths end in an attribute step), not crash."""
        from repro.dom.builder import E, document
        from repro.induction import QuerySample
        from repro.runtime.artifact import RankedQuery, StoredSample
        from repro.xpath.canonical import canonical_key
        from repro.xpath.compile import evaluate_compiled
        from repro.xpath.parser import parse_query

        doc = document(E("html", E("body", E("a", "x", href="/jobs"))))
        query_text = "descendant::a/attribute::href"
        attrs = evaluate_compiled(parse_query(query_text), doc.root, doc)
        assert attrs and attrs[0].name == "href"
        anchor = doc.find(tag="a")
        artifact = WrapperArtifact(
            task_id="t/attr",
            site_id="t",
            role="",
            queries=(RankedQuery(query_text, 1.0, 1, 0, 0),),
            ensemble=(query_text,),
            quorum=1,
            baseline_paths=canonical_key(attrs),
            samples=(StoredSample.from_sample(QuerySample(doc, [anchor])),),
        )
        report = DriftDetector().check(artifact, doc)
        assert report.healthy
        # And the baseline fingerprint itself is an evaluable path.
        (path,) = artifact.baseline_paths
        assert path.endswith("/attribute::href")
        assert evaluate_compiled(parse_query(path), doc.root, doc) == attrs


class TestSignals:
    #: Sites whose churn breaks the induced wrapper within the window
    #: (verified against the seeded archives; the scan keeps this robust).
    DRIFTING = ["weather-1/temp", "video-2/title", "forum-1/compose"]

    @pytest.mark.parametrize("task_id", DRIFTING)
    def test_empty_result_fires_on_break(self, task_id):
        artifact, archive, corpus_task = induce_artifact(task_id, 16)
        report, _ = first_drift(artifact, archive, corpus_task, DriftDetector(), 16)
        assert report is not None, f"{task_id}: no drift detected in 16 snapshots"
        assert EMPTY_RESULT in report.signals or ENSEMBLE_DISAGREEMENT in report.signals

    def test_canonical_change_is_soft_by_default(self):
        """Positional churn (promo blocks) changes canonical paths while
        the wrapper keeps extracting — monitored, not flagged."""
        artifact, archive, corpus_task = induce_artifact("movies-0/director", 30)
        detector = DriftDetector()
        seen_soft_change = False
        for index in range(1, 30):
            if archive.is_broken(index):
                continue
            doc = archive.snapshot(index)
            if not archive.targets(doc, corpus_task.task.role):
                break
            report = detector.check(artifact, doc, snapshot=index)
            if report.drifted:
                break
            if CANONICAL_CHANGE in report.signals:
                seen_soft_change = True
                break
        assert seen_soft_change, "no canonical-path change observed while healthy"

    def test_strict_config_promotes_canonical_change(self):
        artifact, archive, corpus_task = induce_artifact("movies-0/director", 30)
        strict = DriftDetector(DriftConfig(canonical_change_is_hard=True))
        report, _ = first_drift(artifact, archive, corpus_task, strict, 30)
        assert report is not None
        assert CANONICAL_CHANGE in report.signals or report.drifted

    def test_single_member_disagreement_stays_quiet(self):
        """One broken member of a 3-committee is below the 0.5 threshold."""
        artifact, archive, _ = induce_artifact("movies-0/director", 1)
        doc = archive.snapshot(0)
        report = DriftDetector().check(artifact, doc)
        assert ENSEMBLE_DISAGREEMENT not in report.signals
        assert report.disagreeing_members / max(report.member_count, 1) < 0.5


class TestReinduce:
    def test_automatic_repair_recovers_ground_truth(self):
        artifact, archive, corpus_task = induce_artifact("weather-1/temp", 16)
        report, doc = first_drift(artifact, archive, corpus_task, DriftDetector(), 16)
        assert report is not None
        truth = archive.targets(doc, corpus_task.task.role)
        assert not wrapper_matches_targets(artifact.best_query(), doc, truth)
        repaired = reinduce(artifact, doc, snapshot=report.snapshot)
        assert wrapper_matches_targets(repaired.best_query(), doc, truth)
        assert repaired.generation == artifact.generation + 1
        assert repaired.provenance["repair_labels"] == "ensemble_vote"
        assert repaired.provenance["repaired_at_snapshot"] == report.snapshot
        # The repaired artifact carries both page versions as samples.
        assert len(repaired.samples) == len(artifact.samples) + 1

    def test_repair_reuses_original_induction_settings(self):
        """A wrapper induced with custom settings must be repaired under
        the same settings, not silently re-ranked with the defaults."""
        from repro.induction import InductionConfig

        corpus_task = TASKS["weather-1/temp"]
        archive = SyntheticArchive(corpus_task.spec, n_snapshots=16)
        doc0 = archive.snapshot(0)
        targets0 = archive.targets(doc0, corpus_task.task.role)
        config = InductionConfig(
            k=5, allow_text_predicates=False, skipped_attributes=frozenset({"style", "id"})
        )
        result = WrapperInducer(k=5, config=config).induce_one(doc0, targets0)
        artifact = WrapperArtifact.from_induction(
            result,
            [QuerySample(doc0, targets0)],
            task_id=corpus_task.task_id,
            site_id=corpus_task.spec.site_id,
            role=corpus_task.task.role,
            config=config,
        )
        # The complete config round-trips — including the Sec. 6.2
        # no-text-predicates protocol and set-valued fields.
        assert artifact.induction_config() == config
        assert WrapperArtifact.loads(artifact.dumps()).induction_config() == config
        report, doc = first_drift(artifact, archive, corpus_task, DriftDetector(), 16)
        assert report is not None
        truth = archive.targets(doc, corpus_task.task.role)
        repaired = reinduce(artifact, doc, targets=truth, snapshot=report.snapshot)
        assert repaired.config == artifact.config  # settings survived repair
        assert repaired.induction_config() == config

    def test_explicit_labels_override_vote(self):
        artifact, archive, corpus_task = induce_artifact("weather-1/temp", 16)
        report, doc = first_drift(artifact, archive, corpus_task, DriftDetector(), 16)
        truth = archive.targets(doc, corpus_task.task.role)
        repaired = reinduce(artifact, doc, targets=truth, snapshot=report.snapshot)
        assert repaired.provenance["repair_labels"] == "explicit"
        assert wrapper_matches_targets(repaired.best_query(), doc, truth)

    def test_explicit_empty_labels_raise_artifact_error(self):
        """An empty re-annotation must fail with the documented error type,
        not leak QuerySample's ValueError past maintain_over_archive."""
        artifact, archive, _ = induce_artifact("movies-0/director", 1)
        with pytest.raises(ArtifactError, match="re-annotation"):
            reinduce(artifact, archive.snapshot(0), targets=[])

    def test_empty_vote_requires_reannotation(self):
        """When every member breaks, automatic repair must refuse rather
        than re-induce from garbage labels."""
        artifact, archive, corpus_task = induce_artifact("sports-2/quote", 10)
        report, doc = first_drift(artifact, archive, corpus_task, DriftDetector(), 10)
        assert report is not None
        if artifact.ensemble_wrapper().select(doc):
            pytest.skip("ensemble vote survived on this trajectory")
        with pytest.raises(ArtifactError, match="re-annotation"):
            reinduce(artifact, doc)

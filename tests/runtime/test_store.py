"""Sharded artifact store: stable placement, crash safety, LRU,
multi-process access, and the drift-report streams."""

import json
import multiprocessing
import os
import subprocess
import sys

import pytest

from repro.runtime import (
    ShardedArtifactStore,
    StoreError,
    WrapperArtifact,
    artifacts_from_path,
    migrate_directory,
    shard_index,
    site_key_of,
)
from repro.runtime.corpus import snapshot0_annotation
from repro.induction import QuerySample, WrapperInducer
from repro.sites import single_node_tasks

INDUCER = WrapperInducer(k=10)


@pytest.fixture(scope="module")
def artifacts():
    """A handful of real corpus artifacts (shared — induction is the
    expensive part of these tests)."""
    built = []
    for corpus_task in single_node_tasks()[:6]:
        doc, targets = snapshot0_annotation(corpus_task)
        result = INDUCER.induce_one(doc, targets)
        built.append(
            WrapperArtifact.from_induction(
                result,
                [QuerySample(doc, targets)],
                task_id=corpus_task.task_id,
                site_id=corpus_task.spec.site_id,
                role=corpus_task.task.role,
            )
        )
    return built


@pytest.fixture
def store(tmp_path, artifacts):
    store = ShardedArtifactStore(tmp_path / "store", n_shards=4)
    for artifact in artifacts:
        store.put(artifact)
    return store


class TestPlacementStability:
    def test_same_key_same_shard_across_instances(self, tmp_path, artifacts):
        a = ShardedArtifactStore(tmp_path / "a", n_shards=8)
        b = ShardedArtifactStore(tmp_path / "b", n_shards=8)
        for artifact in artifacts:
            assert a.shard_of(artifact.task_id) == b.shard_of(artifact.task_id)

    def test_placement_survives_process_boundaries(self):
        """The shard function must not depend on the per-process hash
        seed — a subprocess with a different PYTHONHASHSEED must compute
        the identical placement."""
        keys = ["academic-0", "movies-3", "weather-1", "nba-2"]
        local = [shard_index(key, 8) for key in keys]
        code = (
            "import sys; sys.path.insert(0, 'src'); "
            "from repro.runtime.store import shard_index; "
            f"print([shard_index(k, 8) for k in {keys!r}])"
        )
        for seed in ("0", "1", "424242"):
            out = subprocess.run(
                [sys.executable, "-c", code],
                env={**os.environ, "PYTHONHASHSEED": seed},
                capture_output=True,
                text=True,
                check=True,
                cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            )
            assert json.loads(out.stdout.replace("'", '"')) == local

    def test_colocated_tasks_share_a_shard(self):
        assert site_key_of("movies-0/director") == "movies-0"
        assert shard_index("movies-0", 8) == shard_index(
            site_key_of("movies-0/title"), 8
        )

    def test_path_of_matches_put(self, store, artifacts):
        for artifact in artifacts:
            assert store.path_of(artifact.task_id).exists()

    def test_reopen_reads_shard_count_from_metadata(self, store, artifacts):
        reopened = ShardedArtifactStore(store.root)
        assert reopened.n_shards == store.n_shards
        assert reopened.task_ids() == sorted(a.task_id for a in artifacts)

    def test_conflicting_shard_count_is_rejected(self, store):
        with pytest.raises(StoreError, match="re-sharding"):
            ShardedArtifactStore(store.root, n_shards=16)


class TestAtomicWrites:
    def test_partial_write_is_never_visible(self, tmp_path, artifacts, monkeypatch):
        """A crash between temp write and publish must leave get()/scan()
        seeing either the old artifact or nothing — never a torn file."""
        store = ShardedArtifactStore(tmp_path / "store", n_shards=2)
        artifact = artifacts[0]

        def crash(src, dst):
            raise OSError("simulated crash before publish")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            store.put(artifact)
        monkeypatch.undo()
        assert artifact.task_id not in store
        assert list(store.scan()) == []
        # The failed temp file was cleaned up, not left to rot.
        assert list(store.root.rglob("*.tmp-*")) == []
        # The same store keeps working after the "crash".
        store.put(artifact)
        assert store.get(artifact.task_id) == artifact

    def test_temp_files_are_invisible_to_readers(self, store, artifacts):
        """Even an *uncleaned* temp file (hard kill) is ignored."""
        shard = store.path_of(artifacts[0].task_id).parent
        (shard / "stray.json.tmp-999").write_text("{ torn")
        assert store.task_ids() == sorted(a.task_id for a in artifacts)
        list(store.scan())  # does not try to parse the torn file

    def test_put_replaces_previous_generation(self, store, artifacts):
        artifact = artifacts[0]
        from dataclasses import replace

        newer = replace(artifact, generation=artifact.generation + 1)
        store.put(newer)
        assert store.get(artifact.task_id).generation == newer.generation
        assert len(store) == len(artifacts)


class TestLRUCache:
    def test_hot_get_skips_reload(self, store, artifacts):
        task_id = artifacts[0].task_id
        store.get(task_id)
        before = store.cache_info()
        again = store.get(task_id)
        after = store.cache_info()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses
        assert again == artifacts[0]

    def test_eviction_at_capacity(self, tmp_path, artifacts):
        store = ShardedArtifactStore(tmp_path / "small", n_shards=2, cache_size=2)
        for artifact in artifacts[:4]:
            store.put(artifact)
        info = store.cache_info()
        assert info.size == 2
        assert info.evictions == 2
        # Evicted entries still load (from disk), newest entries hit.
        assert store.get(artifacts[0].task_id) == artifacts[0]

    def test_out_of_band_write_invalidates(self, store, artifacts):
        """A put from another process changes the file mtime; the cached
        entry must not be served stale."""
        artifact = artifacts[0]
        store.get(artifact.task_id)
        from dataclasses import replace

        other = ShardedArtifactStore(store.root)
        other.put(replace(artifact, generation=7))
        path = store.path_of(artifact.task_id)
        os.utime(path, ns=(os.stat(path).st_mtime_ns + 1,) * 2)
        assert store.get(artifact.task_id).generation == 7

    def test_cache_disabled(self, tmp_path, artifacts):
        store = ShardedArtifactStore(tmp_path / "nocache", n_shards=2, cache_size=0)
        store.put(artifacts[0])
        store.get(artifacts[0].task_id)
        assert store.cache_info().size == 0


def _hammer(args):
    """Worker for the concurrency test: re-put and re-read every
    artifact repeatedly; any torn read raises."""
    root, task_ids, rounds = args
    store = ShardedArtifactStore(root, cache_size=0)
    for _ in range(rounds):
        for task_id in task_ids:
            artifact = store.get(task_id)
            store.put(artifact.with_provenance(writer=os.getpid()))
            store.get(task_id)
    return os.getpid()


class TestConcurrentAccess:
    def test_parallel_put_get_never_tears(self, store, artifacts):
        task_ids = [a.task_id for a in artifacts]
        with multiprocessing.Pool(3) as pool:
            pids = pool.map(_hammer, [(str(store.root), task_ids, 3)] * 3)
        assert len(set(pids)) == 3
        # Every artifact is intact and parses/validates cleanly.
        loaded = list(ShardedArtifactStore(store.root).scan())
        assert sorted(a.task_id for a in loaded) == sorted(task_ids)


class TestReportStreams:
    def test_append_and_read_round_trip(self, store, artifacts):
        task_id = artifacts[0].task_id
        store.append_reports(task_id, [{"snapshot": 1, "signals": []}])
        store.append_reports(task_id, [{"snapshot": 2, "signals": ["empty_result"]}])
        reports = store.read_reports(task_id)
        assert [r["snapshot"] for r in reports] == [1, 2]
        assert store.reports_path(task_id) in store.report_paths()

    def test_stream_lives_in_the_artifact_shard(self, store, artifacts):
        task_id = artifacts[0].task_id
        store.append_reports(task_id, [{"snapshot": 1}])
        assert store.reports_path(task_id).parent.parent == store.path_of(
            task_id
        ).parent

    def test_missing_stream_reads_empty(self, store):
        assert store.read_reports("no-such/task") == []


class TestMigrationAndDiscovery:
    def test_flat_directory_migrates_losslessly(self, tmp_path, artifacts):
        flat = tmp_path / "flat"
        flat.mkdir()
        for artifact in artifacts:
            artifact.save(flat / artifact.filename())
        store = migrate_directory(flat, tmp_path / "migrated", n_shards=4)
        assert sorted(a.task_id for a in store.scan()) == sorted(
            a.task_id for a in artifacts
        )

    def test_artifacts_from_path_handles_both_layouts(self, tmp_path, store, artifacts):
        flat = tmp_path / "flat2"
        flat.mkdir()
        for artifact in artifacts:
            artifact.save(flat / artifact.filename())
        from_flat = artifacts_from_path(flat)
        from_store = artifacts_from_path(store.root)
        assert sorted(a.task_id for a in from_flat) == sorted(
            a.task_id for a in from_store
        )

    def test_get_missing_raises_keyerror(self, store):
        with pytest.raises(KeyError):
            store.get("no-such/task")

    def test_corrupt_metadata_is_rejected(self, tmp_path):
        root = tmp_path / "corrupt"
        root.mkdir()
        (root / "store.json").write_text("not json")
        with pytest.raises(StoreError, match="corrupt store metadata"):
            ShardedArtifactStore(root)

"""Drift-check fleet: shard assignment, telemetry streams, repair
chains, and multi-process sweeps over a sharded store."""

import pytest

from repro.evolution import SyntheticArchive
from repro.runtime import (
    DriftConfig,
    ShardedArtifactStore,
    SweepConfig,
    WrapperArtifact,
    induce_corpus_task,
    sweep_store,
    sweep_wrapper,
)
from repro.runtime.fleet import _assign_shards
from repro.induction import WrapperInducer
from repro.sites import single_node_tasks

#: A task whose archive drifts early (empty_result + disagreement at
#: snapshot 4 — exercised by the CLI tests too).
DRIFTING_TASK = "weather-1/temp"

INDUCER = WrapperInducer(k=10)


def _artifact_for(task_id):
    (corpus_task,) = [t for t in single_node_tasks() if t.task_id == task_id]
    result, sample = induce_corpus_task(corpus_task, INDUCER)
    return corpus_task, WrapperArtifact.from_induction(
        result,
        [sample],
        task_id=corpus_task.task_id,
        site_id=corpus_task.spec.site_id,
        role=corpus_task.task.role,
    )


@pytest.fixture(scope="module")
def fleet_store(tmp_path_factory):
    """A store with a handful of wrappers, including one that drifts."""
    store = ShardedArtifactStore(tmp_path_factory.mktemp("fleet") / "store", n_shards=4)
    for task_id in ["academic-0/scholar", "academic-1/scholar", DRIFTING_TASK]:
        _, artifact = _artifact_for(task_id)
        store.put(artifact)
    return store


class TestShardAssignment:
    def test_every_shard_assigned_exactly_once(self):
        for workers in (1, 2, 3, 8, 11):
            groups = _assign_shards(8, workers)
            flat = sorted(shard for group in groups for shard in group)
            assert flat == list(range(8))
            assert len(groups) == min(workers, 8)

    def test_workers_beyond_shards_collapse(self):
        assert len(_assign_shards(2, 16)) == 2


class TestSweepWrapper:
    def test_healthy_wrapper_streams_every_check(self):
        corpus_task, artifact = _artifact_for("academic-0/scholar")
        archive = SyntheticArchive(corpus_task.spec, n_snapshots=8)
        outcome, lines, repaired = sweep_wrapper(
            artifact, archive, SweepConfig(n_snapshots=8)
        )
        assert not outcome.drifted
        assert repaired is None
        assert outcome.checked == len(lines)
        # Telemetry records the soft signals too, not just hard drift.
        assert all({"snapshot", "signals", "generation"} <= line.keys() for line in lines)

    def test_drifting_wrapper_repairs_and_continues(self):
        corpus_task, artifact = _artifact_for(DRIFTING_TASK)
        archive = SyntheticArchive(corpus_task.spec, n_snapshots=12)
        outcome, lines, repaired = sweep_wrapper(
            artifact, archive, SweepConfig(n_snapshots=12)
        )
        assert outcome.drifted
        assert outcome.repairs >= 1
        assert repaired is not None
        assert repaired.generation == outcome.final_generation >= 1
        # The sweep continued past the drift point with the repaired
        # generation: later lines carry generation >= 1.
        post = [l for l in lines if l["snapshot"] > outcome.drift_snapshots[0]]
        assert post and all(line["generation"] >= 1 for line in post)

    def test_no_repair_stops_at_first_drift(self):
        corpus_task, artifact = _artifact_for(DRIFTING_TASK)
        archive = SyntheticArchive(corpus_task.spec, n_snapshots=12)
        outcome, lines, repaired = sweep_wrapper(
            artifact, archive, SweepConfig(n_snapshots=12, repair=False)
        )
        assert outcome.drift_snapshots == (lines[-1]["snapshot"],)
        assert repaired is None
        assert outcome.final_generation == 0


class TestSweepStore:
    def test_sweep_writes_streams_and_repairs(self, fleet_store):
        summary = sweep_store(fleet_store, SweepConfig(n_snapshots=10))
        assert len(summary.wrappers) == 3
        assert summary.drifted == 1
        assert summary.repaired >= 1
        assert summary.repair_failures == 0
        # Every wrapper has a telemetry stream under its own shard.
        for wrapper in summary.wrappers:
            reports = fleet_store.read_reports(wrapper.task_id)
            assert len(reports) >= wrapper.checked
        # The repaired generation is what the store now serves.
        assert fleet_store.get(DRIFTING_TASK).generation >= 1

    def test_multiprocess_sweep_matches_single_process(self, tmp_path):
        stores = []
        for name in ("solo", "fleet"):
            store = ShardedArtifactStore(tmp_path / name, n_shards=4)
            for task_id in ["academic-0/scholar", DRIFTING_TASK]:
                _, artifact = _artifact_for(task_id)
                store.put(artifact)
            stores.append(store)
        solo = sweep_store(stores[0], SweepConfig(n_snapshots=10, workers=1))
        fleet = sweep_store(stores[1], SweepConfig(n_snapshots=10, workers=3))
        assert [w.task_id for w in solo.wrappers] == [w.task_id for w in fleet.wrappers]
        for a, b in zip(solo.wrappers, fleet.wrappers):
            assert a == b
        assert stores[0].read_reports(DRIFTING_TASK) == stores[1].read_reports(
            DRIFTING_TASK
        )

    def test_repeat_sweeps_append_to_streams(self, tmp_path):
        store = ShardedArtifactStore(tmp_path / "again", n_shards=2)
        _, artifact = _artifact_for("academic-0/scholar")
        store.put(artifact)
        sweep_store(store, SweepConfig(n_snapshots=6))
        first = len(store.read_reports("academic-0/scholar"))
        sweep_store(store, SweepConfig(n_snapshots=6))
        assert len(store.read_reports("academic-0/scholar")) == 2 * first

    def test_strict_canonical_config_reaches_workers(self, tmp_path):
        store = ShardedArtifactStore(tmp_path / "strict", n_shards=2)
        _, artifact = _artifact_for("academic-0/scholar")
        store.put(artifact)
        config = SweepConfig(
            n_snapshots=6, drift=DriftConfig(canonical_change_is_hard=True)
        )
        # Just exercising the path: strict mode must not crash and the
        # summary must stay coherent.
        summary = sweep_store(store, config)
        assert len(summary.wrappers) == 1

    def test_invalid_config_is_rejected(self):
        with pytest.raises(ValueError):
            SweepConfig(n_snapshots=1)
        with pytest.raises(ValueError):
            SweepConfig(workers=0)

"""The bulk wire modes of ``/extract_many``: JSON default, NDJSON
streaming negotiation, per-item failure slots, and client/router
parity across ``wire="pipeline"|"bulk"|"stream"``."""

import asyncio
import json

import pytest

from repro import (
    ClusterMap,
    RouterClient,
    Sample,
    WrapperClient,
    mark_volatile,
    parse_html,
)
from repro.api.remote import RemoteWrapperClient
from repro.api.results import FacadeError
from repro.runtime.net import WrapperHTTPServer
from tests.serving_utils import spawn_listen, terminate

TITLE_PAGE = """
<html><body>
<div class="item"><h1 class="name">Alpha</h1><span class="price">10</span></div>
</body></html>
"""

OTHER_PAGE = """
<html><body>
<div class="item"><h1 class="name">Beta</h1><span class="price">20</span></div>
</body></html>
"""


def run(coro):
    return asyncio.run(coro)


def deployed_client() -> WrapperClient:
    client = WrapperClient()
    doc = parse_html(TITLE_PAGE)
    name = doc.find(tag="h1", class_="name")
    price = doc.find(tag="span", class_="price")
    mark_volatile(name, price)
    client.induce("shop/name", [Sample(doc, [name])])
    client.induce("shop/price", [Sample(doc, [price])])
    return client


def request_bytes(path: str, payload: dict, accept: str = "") -> bytes:
    body = json.dumps(payload).encode()
    head = f"POST {path} HTTP/1.1\r\nContent-Length: {len(body)}\r\n"
    if accept:
        head += f"Accept: {accept}\r\n"
    return (head + "\r\n").encode() + body


async def read_head(reader):
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        if ":" in line:
            name, value = line.split(":", 1)
            headers[name.strip().lower()] = value.strip()
    return status, headers


async def json_exchange(host, port, payload: bytes):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(payload)
        await writer.drain()
        status, headers = await read_head(reader)
        body = await reader.readexactly(int(headers["content-length"]))
        return status, headers, json.loads(body)
    finally:
        writer.close()


async def stream_exchange(host, port, payload: bytes):
    """Send one request; parse a length-prefixed NDJSON answer."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(payload)
        await writer.drain()
        status, headers = await read_head(reader)
        slots = []
        while True:
            prefix = await reader.readline()
            length = int(prefix.strip())
            if length == 0:
                break
            frame = await reader.readexactly(length)
            assert frame.endswith(b"\n")  # the length covers the newline
            slots.append(json.loads(frame))
        trailing = await reader.read()  # server must close after the stream
        assert trailing == b""
        return status, headers, slots
    finally:
        writer.close()


class TestWireProtocol:
    def test_json_default_slots_match_single_extract(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                _, _, single = await json_exchange(
                    host, port,
                    request_bytes(
                        "/extract", {"site_key": "shop/name", "html": TITLE_PAGE}
                    ),
                )
                items = [
                    {"site_key": "shop/name", "html": TITLE_PAGE},
                    {"site_key": "shop/price", "html": TITLE_PAGE},
                ]
                status, headers, body = await json_exchange(
                    host, port, request_bytes("/extract_many", {"items": items})
                )
                assert status == 200
                assert headers["content-type"] == "application/json"
                slots = body["results"]
                assert [slot["status"] for slot in slots] == [200, 200]
                # The bulk slot carries the byte-identical /extract payload.
                assert slots[0]["result"] == single
                assert slots[1]["result"]["values"] == ["10"]

        run(go())

    def test_accept_negotiates_the_ndjson_stream(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                items = [
                    {"site_key": "shop/name", "html": TITLE_PAGE},
                    {"site_key": "shop/price", "html": OTHER_PAGE},
                ]
                _, _, json_body = await json_exchange(
                    host, port, request_bytes("/extract_many", {"items": items})
                )
                status, headers, slots = await stream_exchange(
                    host, port,
                    request_bytes(
                        "/extract_many", {"items": items},
                        accept="application/x-ndjson",
                    ),
                )
                assert status == 200
                assert headers["content-type"] == "application/x-ndjson"
                assert headers["connection"] == "close"
                assert "content-length" not in headers
                # Same slots, frame by frame, in item order.
                assert slots == json_body["results"]

        run(go())

    def test_per_item_failures_fail_the_slot_not_the_batch(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                items = [
                    {"site_key": "no/such", "html": TITLE_PAGE},
                    {"site_key": "shop/name"},  # missing html
                    {"site_key": "shop/name", "html": TITLE_PAGE},
                ]
                status, _, body = await json_exchange(
                    host, port, request_bytes("/extract_many", {"items": items})
                )
                assert status == 200  # the batch itself succeeds
                slots = body["results"]
                assert slots[0]["status"] == 404
                assert slots[0]["code"] == "unknown_wrapper"
                assert slots[1]["status"] == 400
                assert slots[2]["status"] == 200
                assert slots[2]["result"]["values"] == ["Alpha"]

        run(go())

    def test_items_must_be_a_list(self):
        async def go():
            async with WrapperHTTPServer(deployed_client()) as server:
                host, port = server.address
                status, _, body = await json_exchange(
                    host, port, request_bytes("/extract_many", {"items": "nope"})
                )
                assert status == 400
                assert body["code"] == "bad_request"

        run(go())


@pytest.fixture(scope="module")
def live_server():
    proc, host, port = spawn_listen()
    remote = RemoteWrapperClient(host, port)
    doc = parse_html(TITLE_PAGE)
    name = doc.find(tag="h1", class_="name")
    price = doc.find(tag="span", class_="price")
    mark_volatile(name, price)
    remote.induce("shop/name", [Sample(doc, [name])])
    remote.induce("shop/price", [Sample(doc, [price])])
    try:
        yield remote, host, port
    finally:
        remote.close()
        terminate([proc])


class TestClientWireModes:
    ITEMS = [
        ("shop/name", TITLE_PAGE),
        ("shop/price", TITLE_PAGE),
        ("shop/name", OTHER_PAGE),
    ]

    def test_bulk_and_stream_match_pipeline(self, live_server):
        remote, _, _ = live_server
        baseline = remote.extract_many(self.ITEMS, wire="pipeline")
        for wire in ("bulk", "stream"):
            results = remote.extract_many(self.ITEMS, wire=wire)
            assert [r.to_payload() for r in results] == [
                r.to_payload() for r in baseline
            ]

    def test_bulk_modes_raise_the_same_typed_errors(self, live_server):
        remote, _, _ = live_server
        items = [("shop/name", TITLE_PAGE), ("no/such", TITLE_PAGE)]
        for wire in ("bulk", "stream"):
            results = remote.extract_many(items, wire=wire, return_errors=True)
            assert results[0].values == ("Alpha",)
            assert isinstance(results[1], KeyError)
            with pytest.raises(KeyError):
                remote.extract_many(items, wire=wire)

    def test_invalid_wire_is_rejected_by_every_backend(self, live_server):
        remote, _, _ = live_server
        for client in (remote, WrapperClient()):
            with pytest.raises(FacadeError, match="wire"):
                client.extract_many(self.ITEMS, wire="telepathy")

    def test_router_passes_wire_through(self, live_server):
        _, host, port = live_server
        cluster = ClusterMap((f"{host}:{port}",), n_shards=8)
        with RouterClient(cluster) as router:
            baseline = router.extract_many(self.ITEMS, wire="pipeline")
            for wire in ("bulk", "stream"):
                results = router.extract_many(self.ITEMS, wire=wire)
                assert [r.to_payload() for r in results] == [
                    r.to_payload() for r in baseline
                ]
            with pytest.raises(FacadeError, match="wire"):
                router.extract_many(self.ITEMS, wire="telepathy")

"""Batch extraction engine: equivalence with the serial loop, worker
fan-out, grouping, and node-reference fidelity."""

import pytest

from repro.dom.builder import E, T, document
from repro.dom.serialize import to_html
from repro.evolution import SyntheticArchive
from repro.induction import QuerySample, WrapperInducer
from repro.runtime import (
    PageJob,
    WrapperArtifact,
    extract_document,
    extract_serial,
    jobs_for_artifacts,
)
from repro.runtime.extractor import BatchExtractor
from repro.sites import single_node_tasks


@pytest.fixture(scope="module")
def corpus_jobs():
    """Real corpus pages with every task wrapper of the site on them."""
    inducer = WrapperInducer(k=10)
    artifacts, page_html = [], {}
    for corpus_task in single_node_tasks(limit=8):
        archive = SyntheticArchive(corpus_task.spec, n_snapshots=1)
        doc = archive.snapshot(0)
        targets = archive.targets(doc, corpus_task.task.role)
        result = inducer.induce_one(doc, targets)
        artifacts.append(
            WrapperArtifact.from_induction(
                result,
                [QuerySample(doc, targets)],
                task_id=corpus_task.task_id,
                site_id=corpus_task.spec.site_id,
                role=corpus_task.task.role,
            )
        )
        page_html[corpus_task.spec.site_id] = to_html(doc)
    return jobs_for_artifacts(artifacts, page_html)


class TestSerialBatchEquivalence:
    def test_batch_matches_serial_loop(self, corpus_jobs):
        assert BatchExtractor(workers=1).extract(corpus_jobs) == extract_serial(
            corpus_jobs
        )

    def test_worker_fanout_matches_inprocess(self, corpus_jobs):
        in_process = BatchExtractor(workers=1).extract(corpus_jobs)
        fanned_out = BatchExtractor(workers=2).extract(corpus_jobs)
        assert fanned_out == in_process

    def test_record_order_follows_job_order(self, corpus_jobs):
        records = BatchExtractor(workers=2).extract(corpus_jobs)
        expected = [
            (job.page_id, wrapper_id)
            for job in corpus_jobs
            for wrapper_id, _ in job.wrappers
        ]
        assert [(r.page_id, r.wrapper_id) for r in records] == expected

    def test_results_are_nonempty_on_snapshot0(self, corpus_jobs):
        records = BatchExtractor(workers=1).extract(corpus_jobs)
        assert records and all(not r.is_empty for r in records)


class TestNodeReferences:
    def test_values_and_paths_describe_matches(self):
        doc = document(
            E("html", E("body", E("div", E("span", "hello", class_="x"))))
        )
        records = extract_document(doc, [("w", 'descendant::span[@class="x"]')], "p")
        (record,) = records
        assert record.count == 1
        assert record.values == ("hello",)
        assert record.paths == (
            "/child::html[1]/child::body[1]/child::div[1]/child::span[1]",
        )

    def test_attribute_results_use_attribute_step(self):
        doc = document(E("html", E("body", E("a", "x", href="/target"))))
        (record,) = extract_document(doc, [("w", "descendant::a/attribute::href")], "p")
        assert record.values == ("/target",)
        assert record.paths[0].endswith("/attribute::href")

    def test_empty_result_is_recorded_not_dropped(self):
        doc = document(E("html", E("body", E("p", "x"))))
        (record,) = extract_document(doc, [("w", "descendant::table")], "p")
        assert record.is_empty and record.count == 0

    def test_text_node_results(self):
        doc = document(E("html", E("body", E("p", T("only text")))))
        (record,) = extract_document(doc, [("w", "descendant::p/child::text()")], "p")
        assert record.values == ("only text",)


class TestJobConstruction:
    def test_jobs_group_by_site_and_include_ensemble(self, corpus_jobs):
        for job in corpus_jobs:
            ids = [wrapper_id for wrapper_id, _ in job.wrappers]
            tops = [i for i in ids if "#m" not in i]
            assert tops, job.page_id
            members = [i for i in ids if "#m" in i]
            assert members, "ensemble members missing from jobs"

    def test_chunking_covers_all_jobs_without_overlap(self):
        payload = list(range(7))
        chunks = BatchExtractor._chunk(payload, 3)
        assert [len(c) for c in chunks] == [3, 2, 2]
        assert [x for chunk in chunks for x in chunk] == payload

    def test_more_workers_than_jobs(self):
        doc_html = to_html(document(E("html", E("body", E("p", "x")))))
        jobs = [PageJob("p1", doc_html, (("w", "descendant::p"),))] * 2
        records = BatchExtractor(workers=8).extract(jobs)
        assert len(records) == 2

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            BatchExtractor(workers=0)


class TestPersistentPool:
    def test_pool_is_reused_across_calls(self, corpus_jobs):
        expected = BatchExtractor(workers=2).extract(corpus_jobs)
        with BatchExtractor(workers=2, persistent=True) as extractor:
            first = extractor.extract(corpus_jobs)
            pool = extractor._pool
            assert pool is not None
            second = extractor.extract(corpus_jobs)
            assert extractor._pool is pool  # same pool, not respawned
        assert first == second == expected
        assert extractor._pool is None  # context exit shut it down

    def test_close_is_idempotent(self):
        extractor = BatchExtractor(workers=2, persistent=True)
        extractor.close()
        extractor.close()

    def test_single_worker_persistent_never_spawns(self, corpus_jobs):
        with BatchExtractor(workers=1, persistent=True) as extractor:
            extractor.extract(corpus_jobs)
            assert extractor._pool is None

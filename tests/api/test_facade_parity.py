"""One facade, five backends: the identical test suite runs against

* a local in-memory :class:`WrapperClient`,
* a local store-backed :class:`WrapperClient`,
* a :class:`RemoteWrapperClient` talking to a **live** ``python -m
  repro.runtime serve --listen`` subprocess over real TCP,
* a :class:`RouterClient` over a **2-host cluster** of live ``serve
  --listen --own-shards`` subprocesses with disjoint shard groups, and
* a :class:`RouterClient` over a **replicated 3-host cluster** where
  every shard lives on two hosts (replica-union ownership) and writes
  go to both replicas.

Local, remote, and routed are interchangeable — that is the facade's
core contract (and the cluster PR's acceptance criterion).
Cross-backend tests at the end assert byte-identical result payloads
for the same inputs, single-host and routed alike — replication must
be invisible in results.
"""

import http.client
import json

import pytest

from repro import (
    AuthError,
    ClusterMap,
    FacadeError,
    RateLimitError,
    RemoteWrapperClient,
    RouterClient,
    Sample,
    WrapperClient,
    canonical_path,
    mark_volatile,
    parse_html,
)

from tests.api.pages import PRICE_GONE, PRICE_V1, PRICE_V2, RECORD_PAGE
from tests.serving_utils import spawn_listen as _spawn_server
from tests.serving_utils import terminate as _terminate


def _spawn_cluster(n_hosts=2, n_shards=8, extra_args=()):
    """``n_hosts`` live hosts over disjoint shard groups + the map."""
    procs, hosts = [], []
    for index in range(n_hosts):
        own = ",".join(str(s) for s in range(n_shards) if s % n_hosts == index)
        proc, host, port = _spawn_server(
            "--own-shards", own, "--shards", str(n_shards), *extra_args
        )
        procs.append(proc)
        hosts.append(f"{host}:{port}")
    return procs, ClusterMap(tuple(hosts), n_shards)


@pytest.fixture(
    scope="module",
    params=["local-memory", "local-store", "remote", "router", "router-replicated"],
)
def client(request, tmp_path_factory):
    if request.param == "local-memory":
        yield WrapperClient()
    elif request.param == "local-store":
        yield WrapperClient(store=tmp_path_factory.mktemp("parity") / "store")
    elif request.param == "remote":
        proc, host, port = _spawn_server()
        remote = RemoteWrapperClient(host, port)
        try:
            yield remote
        finally:
            remote.close()
            _terminate([proc])
    elif request.param == "router":
        procs, cluster_map = _spawn_cluster()
        router = RouterClient(cluster_map)
        try:
            yield router
        finally:
            router.close()
            _terminate(procs)
    else:
        from tests.cluster.faults import spawn_replicated

        cluster = spawn_replicated(n_hosts=3, n_shards=8)
        router = RouterClient(cluster.cluster_map)
        try:
            yield router
        finally:
            router.close()
            cluster.close()


def price_sample():
    doc = parse_html(PRICE_V1)
    target = doc.find(tag="span", class_="price")
    mark_volatile(target)
    return Sample(doc, [target])


def record_sample():
    doc = parse_html(RECORD_PAGE)
    items = list(doc.root.iter_find(tag="div", class_="s-item"))
    mark_volatile(items)
    return Sample(
        doc,
        items,
        fields={
            "title": [item.find(tag="a") for item in items],
            "price": [item.find(tag="span", class_="price") for item in items],
        },
    )


class TestFacadeContract:
    """Every test runs unchanged against all three backends."""

    def test_induce_get_extract_node_mode(self, client):
        handle = client.induce("parity/price", [price_sample()])
        assert handle.site_key == "parity/price"
        assert handle.mode == "node"
        assert handle.query and handle.queries[0] == handle.query
        assert handle.quorum >= 1

        fetched = client.get("parity/price")
        assert fetched == handle

        result = client.extract("parity/price", PRICE_V1)
        assert result.values == ("10",)
        assert result.query == handle.query
        assert not result.drifted
        assert result.mode == "node"

    def test_contains_and_listing(self, client):
        client.induce("parity/listing", [price_sample()])
        assert "parity/listing" in client
        assert "parity/never" not in client
        assert "parity/listing" in client.keys()
        assert any(h.site_key == "parity/listing" for h in client.handles())

    def test_ensemble_mode(self, client):
        handle = client.induce("parity/ens", [price_sample()], mode="ensemble")
        assert handle.mode == "ensemble"
        result = client.extract("parity/ens", PRICE_V1)
        assert result.mode == "ensemble"
        assert result.values == ("10",)

    def test_record_mode(self, client):
        handle = client.induce("parity/rec", [record_sample()], mode="record")
        assert handle.mode == "record"
        assert set(handle.fields) == {"title", "price"}
        result = client.extract("parity/rec", RECORD_PAGE)
        assert [row["title"] for row in result.records] == [
            "Quiet Tablet 300",
            "Rapid Phone 800",
            "Golden Laptop 200",
        ]
        assert result.records[0]["price"] == "$199.00"

    def test_drift_signals_on_changed_pages(self, client):
        client.induce("parity/drift", [price_sample()])
        healthy = client.check("parity/drift", PRICE_V1)
        assert not healthy.drifted and healthy.healthy

        drifted = client.check("parity/drift", PRICE_V2)
        assert drifted.drifted and drifted.signals

        gone = client.extract("parity/drift", PRICE_GONE)
        assert gone.drifted and "empty_result" in gone.drift_signals

    def test_repair_with_explicit_reannotation(self, client):
        client.induce("parity/repair", [price_sample()])
        doc2 = parse_html(PRICE_V2)
        new_target = doc2.find(tag="em", class_="cost")
        mark_volatile(new_target)
        handle = client.repair(
            "parity/repair", doc2, target_paths=[str(canonical_path(new_target))]
        )
        assert handle.generation == 1
        result = client.extract("parity/repair", PRICE_V2)
        assert result.values == ("12",)
        assert result.generation == 1
        assert not result.drifted

    def test_delete(self, client):
        client.induce("parity/delete", [price_sample()])
        client.delete("parity/delete")
        assert "parity/delete" not in client
        with pytest.raises(KeyError):
            client.get("parity/delete")

    def test_unknown_site_key_raises_keyerror(self, client):
        with pytest.raises(KeyError):
            client.extract("parity/unknown", PRICE_V1)
        with pytest.raises(KeyError):
            client.get("parity/unknown")

    def test_invalid_mode_raises_facade_error(self, client):
        with pytest.raises(FacadeError):
            client.induce("parity/bad", [price_sample()], mode="magic")

    def test_cross_document_sample_raises_facade_error(self, client):
        """A target from a different parse of the page is a bad
        annotation — FacadeError on every backend, never a raw
        engine-layer ValueError."""
        doc = parse_html(PRICE_V1)
        alien = parse_html(PRICE_V1).find(tag="span", class_="price")
        with pytest.raises(FacadeError):
            client.induce("parity/alien", [Sample(doc, [alien])])


KEY_FILE = """\
k-admin-aaaaaaaa *
k-acme-bbbbbbbb acme
k-open-dddddddd
"""


def _raw_status_and_body(host, port, method, path, key=None, payload=None):
    """One raw exchange, returning (status, exact body bytes) — the
    byte-identity assertions compare these across backends."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    headers = {}
    if key:
        headers["Authorization"] = f"Bearer {key}"
    body = None
    if payload is not None:
        body = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    try:
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


class TestAuthQuotaParity:
    """Failure-path parity, mirroring the 413/421 contract tests: every
    *networked* backend (single host, each member of a routed cluster)
    enforces auth and quotas identically, down to the error bytes.
    Local clients have no wire and stay keyless — a no-auth launch is
    the backward-compatible default the last test pins down."""

    def test_401_403_identical_across_backends(self, tmp_path):
        keys = tmp_path / "keys.txt"
        keys.write_text(KEY_FILE)
        proc, host, port = _spawn_server("--auth-keys", str(keys))
        procs, cluster_map = _spawn_cluster(
            extra_args=("--auth-keys", str(keys))
        )
        try:
            # Typed errors through the clients, single-host and routed.
            remote = RemoteWrapperClient(host, port)  # no key
            router_bad = RouterClient(cluster_map, api_key="k-wrong-ffffffff")
            sample = price_sample()
            for call in (
                lambda c: c.get("parity/auth"),
                lambda c: c.extract("parity/auth", PRICE_V1),
                lambda c: c.check("parity/auth", PRICE_V1),
                lambda c: c.delete("parity/auth"),
                lambda c: c.induce("parity/auth", [sample]),
                lambda c: c.repair("parity/auth", PRICE_V1),
                lambda c: c.handles(),
            ):
                for client in (remote, router_bad):
                    with pytest.raises(AuthError) as err:
                        call(client)
                    assert err.value.status == 401
            # A valid key whose tenant does not own the namespace: 403.
            acme = RemoteWrapperClient(host, port, api_key="k-acme-bbbbbbbb")
            with pytest.raises(AuthError) as err:
                acme.get("parity/auth")
            assert err.value.status == 403
            # A granted key serves normally, end to end, on both.
            for client in (
                RemoteWrapperClient(host, port, api_key="k-open-dddddddd"),
                RouterClient(cluster_map, api_key="k-admin-aaaaaaaa"),
            ):
                client.induce("parity/auth-ok", [price_sample()])
                assert client.extract("parity/auth-ok", PRICE_V1).values == ("10",)
                client.delete("parity/auth-ok")
                client.close()
            remote.close()
            router_bad.close()
            acme.close()
            # Byte-identical error bodies across all three server
            # processes, for every failure class.
            servers = [(host, port)] + [
                tuple(address.rsplit(":", 1)) for address in cluster_map.hosts
            ]
            servers = [(h, int(p)) for h, p in servers]
            for method, path, key, payload in (
                ("GET", "/wrappers", None, None),
                ("GET", "/wrappers/parity%2Fauth", "k-wrong-ffffffff", None),
                ("GET", "/wrappers/parity%2Fauth", "k-acme-bbbbbbbb", None),
                ("POST", "/extract", None,
                 {"site_key": "parity/auth", "html": "<p/>"}),
            ):
                answers = {
                    _raw_status_and_body(h, p, method, path, key, payload)
                    for h, p in servers
                }
                assert len(answers) == 1, (method, path, key, answers)
                status, _ = next(iter(answers))
                assert status in (401, 403)
        finally:
            _terminate([proc] + procs)

    def test_429_identical_and_retryable_across_backends(self, tmp_path):
        quota = ("--rate-limit", "0.01", "--burst", "2")
        proc, host, port = _spawn_server(*quota)
        procs, cluster_map = _spawn_cluster(extra_args=quota)
        try:
            remote = RemoteWrapperClient(host, port)
            # Burst of 2, then the bucket is dry (refill is ~never at
            # 0.01/s): the third keyed request is a typed 429 carrying
            # the server's Retry-After hint.
            for _ in range(2):
                with pytest.raises(KeyError):
                    remote.get("parity/throttle")
            with pytest.raises(RateLimitError) as err:
                remote.get("parity/throttle")
            assert err.value.retry_after_s > 0
            # healthz never throttles (routers must keep probing).
            assert remote.healthz()["ok"] is True
            remote.close()
            # The routed backend surfaces the same typed error once
            # every live owner throttled the tenant.
            router = RouterClient(cluster_map)
            for _ in range(2):
                with pytest.raises((KeyError, RateLimitError)):
                    router.get("parity/throttle")
            with pytest.raises(RateLimitError):
                router.get("parity/throttle")
            assert any(
                event["event"] == "rate_limited" for event in router.telemetry
            )
            router.close()
            # Byte-identical 429 bodies modulo the timing-variable
            # retry_after field.
            servers = [(host, port)] + [
                tuple(address.rsplit(":", 1)) for address in cluster_map.hosts
            ]
            bodies = set()
            for h, p in servers:
                h, p = h, int(p)
                status = 0
                for _ in range(4):  # drain whatever budget is left
                    status, raw = _raw_status_and_body(
                        h, p, "GET", "/wrappers/parity%2Fthrottle"
                    )
                    if status == 429:
                        break
                assert status == 429, (h, p)
                payload = json.loads(raw)
                assert payload.pop("retry_after") > 0
                bodies.add(json.dumps(payload, sort_keys=True))
            assert len(bodies) == 1
        finally:
            _terminate([proc] + procs)

    def test_no_auth_launch_stays_open(self):
        proc, host, port = _spawn_server()
        try:
            client = RemoteWrapperClient(host, port)
            client.induce("parity/open", [price_sample()])
            assert client.extract("parity/open", PRICE_V1).values == ("10",)
            client.close()
        finally:
            _terminate([proc])


class TestLocalRemoteEquivalence:
    """Same inputs through both backends → byte-identical payloads."""

    def test_results_are_payload_identical(self):
        local = WrapperClient()
        proc, host, port = _spawn_server()
        try:
            remote = RemoteWrapperClient(host, port)
            for backend in (local, remote):
                backend.induce("eq/price", [price_sample()])
                backend.induce("eq/rec", [record_sample()], mode="record")

            assert (
                local.get("eq/price").to_payload()
                == remote.get("eq/price").to_payload()
            )
            for page in (PRICE_V1, PRICE_V2, PRICE_GONE):
                assert (
                    local.extract("eq/price", page).to_payload()
                    == remote.extract("eq/price", page).to_payload()
                )
                assert (
                    local.check("eq/price", page).to_payload()
                    == remote.check("eq/price", page).to_payload()
                )
            assert (
                local.extract("eq/rec", RECORD_PAGE).to_payload()
                == remote.extract("eq/rec", RECORD_PAGE).to_payload()
            )
            remote.close()
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_router_results_are_payload_identical(self):
        """The 2-host routed backend answers byte-for-byte what the
        local client answers — sharding must be invisible in results."""
        local = WrapperClient()
        procs, cluster_map = _spawn_cluster()
        try:
            router = RouterClient(cluster_map)
            for backend in (local, router):
                backend.induce("eq/price", [price_sample()])
                backend.induce("eq/rec", [record_sample()], mode="record")
            assert (
                local.get("eq/price").to_payload()
                == router.get("eq/price").to_payload()
            )
            for page in (PRICE_V1, PRICE_V2, PRICE_GONE):
                assert (
                    local.extract("eq/price", page).to_payload()
                    == router.extract("eq/price", page).to_payload()
                )
                assert (
                    local.check("eq/price", page).to_payload()
                    == router.check("eq/price", page).to_payload()
                )
            assert (
                local.extract("eq/rec", RECORD_PAGE).to_payload()
                == router.extract("eq/rec", RECORD_PAGE).to_payload()
            )
            # extract_many agrees with itself and with per-key extract,
            # across hosts, in item order.
            items = [("eq/price", PRICE_V1), ("eq/rec", RECORD_PAGE)] * 2
            batched = router.extract_many(items)
            assert [r.to_payload() for r in batched] == [
                local.extract(key, page).to_payload() for key, page in items
            ]
            router.close()
        finally:
            _terminate(procs)

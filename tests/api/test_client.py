"""The local facade: induction modes, typed results, persistence,
drift signals, repair, and error behavior."""

import pytest

from repro import (
    CheckResult,
    ExtractionResult,
    FacadeError,
    Sample,
    WrapperClient,
    mark_volatile,
    parse_html,
)
from repro.induction.samples import QuerySample
from repro.runtime.artifact import WrapperArtifact
from repro.runtime.drift import DriftDetector
from repro.runtime.store import ShardedArtifactStore

from tests.api.pages import LIST_PAGE, PRICE_GONE, PRICE_V1, PRICE_V2, RECORD_PAGE


def price_sample():
    doc = parse_html(PRICE_V1)
    target = doc.find(tag="span", class_="price")
    mark_volatile(target)
    return Sample(doc, [target])


def list_sample():
    doc = parse_html(LIST_PAGE)
    rows = list(doc.root.iter_find(tag="tr"))[1:]
    mark_volatile(rows)
    return Sample(doc, rows)


def record_sample():
    doc = parse_html(RECORD_PAGE)
    items = list(doc.root.iter_find(tag="div", class_="s-item"))
    mark_volatile(items)
    return Sample(
        doc,
        items,
        fields={
            "title": [item.find(tag="a") for item in items],
            "price": [item.find(tag="span", class_="price") for item in items],
        },
    )


class TestInduceModes:
    def test_node_mode_single_target(self):
        client = WrapperClient()
        handle = client.induce("shop/price", [price_sample()])
        assert handle.mode == "node"
        assert handle.query == handle.queries[0]
        assert len(handle.ensemble) >= 1
        result = client.extract("shop/price", PRICE_V1)
        assert result.values == ("10",)
        assert not result.drifted

    def test_node_mode_list_target(self):
        client = WrapperClient()
        client.induce("reviews/rows", [list_sample()])
        result = client.extract("reviews/rows", LIST_PAGE)
        assert result.count == 5  # data rows only, not the header

    def test_ensemble_mode_serves_the_quorum_vote(self):
        client = WrapperClient()
        handle = client.induce("shop/price", [price_sample()], mode="ensemble")
        assert handle.mode == "ensemble"
        result = client.extract("shop/price", PRICE_V1)
        assert result.mode == "ensemble"
        assert result.values == ("10",)

    def test_record_mode_extracts_rows(self):
        client = WrapperClient()
        handle = client.induce("shop/items", [record_sample()], mode="record")
        assert handle.mode == "record"
        assert set(handle.fields) == {"title", "price"}
        result = client.extract("shop/items", RECORD_PAGE)
        assert len(result.records) == 3
        assert result.records[0] == {"title": "Quiet Tablet 300", "price": "$199.00"}
        # anchors are the values/paths surface in record mode
        assert result.count == 3

    def test_record_mode_requires_fields(self):
        client = WrapperClient()
        with pytest.raises(FacadeError, match="fields"):
            client.induce("shop/items", [price_sample()], mode="record")

    def test_record_mode_requires_one_sample(self):
        client = WrapperClient()
        with pytest.raises(FacadeError, match="exactly one"):
            client.induce(
                "shop/items", [record_sample(), record_sample()], mode="record"
            )

    def test_unknown_mode_is_rejected(self):
        client = WrapperClient()
        with pytest.raises(FacadeError, match="unknown induction mode"):
            client.induce("shop/price", [price_sample()], mode="magic")

    def test_query_samples_are_accepted(self):
        client = WrapperClient()
        sample = price_sample()
        legacy = QuerySample(sample.doc, sample.targets)
        handle = client.induce("shop/price", [legacy])
        assert client.extract("shop/price", PRICE_V1).values == ("10",)
        assert handle.generation == 0

    def test_empty_samples_rejected(self):
        client = WrapperClient()
        with pytest.raises(FacadeError, match="at least one sample"):
            client.induce("shop/price", [])


class TestRegistry:
    def test_get_keys_delete_contains(self):
        client = WrapperClient()
        client.induce("a/x", [price_sample()])
        client.induce("b/y", [list_sample()])
        assert client.keys() == ["a/x", "b/y"]
        assert "a/x" in client and "nope" not in client
        assert len(client) == 2
        assert client.get("a/x").site_key == "a/x"
        client.delete("a/x")
        assert "a/x" not in client
        with pytest.raises(KeyError):
            client.get("a/x")
        with pytest.raises(KeyError):
            client.delete("a/x")

    def test_unknown_site_key_raises_keyerror(self):
        client = WrapperClient()
        with pytest.raises(KeyError):
            client.extract("missing/key", PRICE_V1)
        with pytest.raises(KeyError):
            client.check("missing/key", PRICE_V1)
        with pytest.raises(KeyError):
            client.repair("missing/key", PRICE_V1)

    def test_store_backend_persists_across_clients(self, tmp_path):
        root = tmp_path / "store"
        first = WrapperClient(store=root, shards=4)
        first.induce("shop/price", [price_sample()])
        assert ShardedArtifactStore.is_store(root)

        second = WrapperClient(store=root)
        assert second.keys() == ["shop/price"]
        assert second.extract("shop/price", PRICE_V1).values == ("10",)

    def test_existing_store_object_is_accepted(self, tmp_path):
        store = ShardedArtifactStore(tmp_path / "s", n_shards=2)
        client = WrapperClient(store=store)
        client.induce("shop/price", [price_sample()])
        assert store.task_ids() == ["shop/price"]
        assert client.store is store

    def test_deploy_prebuilt_artifact(self, tmp_path):
        source = WrapperClient()
        source.induce("shop/price", [price_sample()])
        artifact = source.artifact("shop/price")
        reloaded = WrapperArtifact.loads(artifact.dumps())

        target = WrapperClient()
        handle = target.deploy(reloaded)
        assert handle.site_key == "shop/price"
        assert target.extract("shop/price", PRICE_V1).values == ("10",)


class TestDriftAndRepair:
    def test_redesign_fires_drift_signals(self):
        client = WrapperClient()
        client.induce("shop/price", [price_sample()])
        result = client.extract("shop/price", PRICE_V2)
        assert result.drifted
        assert result.drift_signals
        check = client.check("shop/price", PRICE_V2)
        assert check.drifted
        assert set(check.signals) == set(result.drift_signals)

    def test_removed_data_fires_empty_result(self):
        client = WrapperClient()
        client.induce("shop/price", [price_sample()])
        result = client.extract("shop/price", PRICE_GONE)
        assert result.is_empty
        assert "empty_result" in result.drift_signals
        assert result.drifted
        check = client.check("shop/price", PRICE_GONE)
        assert check.drifted and "empty_result" in check.signals
        assert check.result_count == 0

    def test_check_matches_the_runtime_drift_detector(self):
        """Facade signals are computed from extraction records; they
        must agree with the DOM-level DriftDetector verdicts."""
        client = WrapperClient()
        client.induce("shop/price", [price_sample()])
        artifact = client.artifact("shop/price")
        detector = DriftDetector()
        for page in (PRICE_V1, PRICE_V2):
            check = client.check("shop/price", page)
            report = detector.check(artifact, parse_html(page))
            assert check.drifted == report.drifted
            assert set(check.signals) == set(report.signals)
            assert check.result_count == report.result_count

    def test_explicit_reannotation_repair(self):
        client = WrapperClient()
        client.induce("shop/price", [price_sample()])

        doc2 = parse_html(PRICE_V2)
        new_target = doc2.find(tag="em", class_="cost")
        mark_volatile(new_target)
        from repro import canonical_path

        handle = client.repair(
            "shop/price", doc2, target_paths=[str(canonical_path(new_target))]
        )
        assert handle.generation == 1
        repaired = client.extract("shop/price", PRICE_V2)
        assert repaired.values == ("12",)
        assert not repaired.drifted
        assert repaired.generation == 1

    def test_repair_persists_the_new_generation(self, tmp_path):
        client = WrapperClient(store=tmp_path / "store")
        client.induce("shop/price", [price_sample()])
        doc2 = parse_html(PRICE_V2)
        target = doc2.find(tag="em", class_="cost")
        from repro import canonical_path

        client.repair("shop/price", doc2, target_paths=[str(canonical_path(target))])
        fresh = WrapperClient(store=tmp_path / "store")
        assert fresh.get("shop/price").generation == 1

    def test_automatic_repair_over_a_corpus_archive(self):
        """The full break-and-recover arc with ensemble-vote labels (no
        explicit re-annotation), on a seeded corpus site known to drift."""
        from repro.evolution import SyntheticArchive
        from repro.sites.verticals import make_weather_site

        spec = make_weather_site(1)
        archive = SyntheticArchive(spec, n_snapshots=30)
        doc0 = archive.snapshot(0)
        targets0 = archive.targets(doc0, "temp")

        client = WrapperClient()
        client.induce(f"{spec.site_id}/temp", [Sample(doc0, targets0)], role="temp")

        drifted_at = repaired_ok = None
        for index in range(1, archive.n_snapshots):
            if archive.is_broken(index):
                continue
            doc = archive.snapshot(index)
            truth = archive.targets(doc, "temp")
            if not truth:
                break
            result = client.extract(f"{spec.site_id}/temp", doc)
            if not result.drifted:
                continue
            drifted_at = index
            handle = client.repair(f"{spec.site_id}/temp", doc)
            assert handle.generation >= 1
            recovered = client.extract(f"{spec.site_id}/temp", doc)
            wanted = sorted(doc.normalized_text(n) for n in truth)
            repaired_ok = sorted(recovered.values) == wanted
            break
        assert drifted_at is not None, "scenario no longer drifts in the window"
        assert repaired_ok


class TestTypedResults:
    def test_extraction_result_payload_round_trip(self):
        client = WrapperClient()
        client.induce("shop/items", [record_sample()], mode="record")
        result = client.extract("shop/items", RECORD_PAGE)
        clone = ExtractionResult.from_payload(result.to_payload())
        assert clone == result

    def test_check_result_payload_round_trip(self):
        client = WrapperClient()
        client.induce("shop/price", [price_sample()])
        check = client.check("shop/price", PRICE_V2)
        assert CheckResult.from_payload(check.to_payload()) == check

    def test_wrapper_handle_payload_round_trip(self):
        client = WrapperClient()
        handle = client.induce("shop/items", [record_sample()], mode="record")
        from repro import WrapperHandle

        assert WrapperHandle.from_payload(handle.to_payload()) == handle

    def test_extract_accepts_documents_and_html(self):
        client = WrapperClient()
        client.induce("shop/price", [price_sample()])
        from_html = client.extract("shop/price", PRICE_V1)
        from_doc = client.extract("shop/price", parse_html(PRICE_V1))
        assert from_html == from_doc

    def test_unparseable_page_is_a_facade_error(self):
        client = WrapperClient()
        client.induce("shop/price", [price_sample()])
        with pytest.raises(FacadeError, match="parse"):
            client.extract("shop/price", 12345)  # not a page at all


class TestSampleModel:
    def test_sample_payload_round_trip_preserves_annotation(self):
        sample = record_sample()
        payload = sample.to_payload()
        clone = Sample.from_payload(payload)
        assert len(clone.targets) == len(sample.targets)
        assert set(clone.fields) == set(sample.fields)
        # Round-tripping again is stable (paths resolve to the same nodes).
        assert clone.to_payload() == payload

    def test_misaligned_fields_rejected(self):
        doc = parse_html(RECORD_PAGE)
        items = list(doc.root.iter_find(tag="div", class_="s-item"))
        with pytest.raises(ValueError, match="one per target"):
            Sample(doc, items, fields={"title": [items[0].find(tag="a")]})

    def test_empty_targets_rejected(self):
        doc = parse_html(RECORD_PAGE)
        with pytest.raises(ValueError, match="at least one target"):
            Sample(doc, [])

    def test_mark_volatile_rejects_non_nodes(self):
        with pytest.raises(TypeError):
            mark_volatile(42)

    def test_mark_volatile_accepts_documents(self):
        doc = parse_html(PRICE_V1)
        mark_volatile(doc)
        assert all(text.meta.get("volatile") for text in doc.index.texts)

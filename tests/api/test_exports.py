"""Public-surface audit: ``__all__`` must match reality.

Every ``__all__`` entry must resolve (lazy PEP 562 exports and
deprecation shims included), every facade symbol must be exported both
by ``repro.api`` and at the package root, and the deprecated entry
points must keep working while warning exactly once per process.
"""

import importlib
import warnings

import pytest

#: Packages whose declared surface is audited.
AUDITED_MODULES = (
    "repro",
    "repro.api",
    "repro.cluster",
    "repro.dom",
    "repro.induction",
    "repro.runtime",
    "repro.sitegen",
    "repro.xpath",
)

#: The facade's client object model — the names the whole codebase
#: converges on.  Each must be importable from repro.api AND from repro.
FACADE_SYMBOLS = (
    "CheckResult",
    "ClusterMap",
    "ExtractionResult",
    "FacadeError",
    "OwnershipError",
    "REPLICATION_FACTOR",
    "RemoteError",
    "RemoteWrapperClient",
    "RouterClient",
    "Sample",
    "ShardOwnership",
    "WrapperClient",
    "WrapperHandle",
    "mark_volatile",
    "qualify_key",
    "replica_indexes",
    "shard_index",
    "site_key_of",
    "split_tenant",
)


@pytest.mark.parametrize("module_name", AUDITED_MODULES)
def test_every_dunder_all_entry_resolves(module_name):
    module = importlib.import_module(module_name)
    exported = module.__all__
    assert exported, f"{module_name} declares an empty __all__"
    assert len(set(exported)) == len(exported), f"duplicates in {module_name}.__all__"
    with warnings.catch_warnings():
        # Deprecated shims resolve with a warning; the audit cares only
        # that they resolve.
        warnings.simplefilter("ignore", DeprecationWarning)
        for name in exported:
            assert getattr(module, name, None) is not None, (
                f"{module_name}.__all__ lists {name!r} but the attribute "
                "does not resolve"
            )


@pytest.mark.parametrize("name", FACADE_SYMBOLS)
def test_facade_symbols_are_exported_everywhere(name):
    api = importlib.import_module("repro.api")
    root = importlib.import_module("repro")
    assert name in api.__all__, f"repro.api.__all__ is missing facade symbol {name}"
    assert name in root.__all__, f"repro.__all__ is missing facade symbol {name}"
    assert getattr(api, name) is getattr(root, name)


def test_sitegen_core_symbols_are_exported():
    """The generator fleet's working surface: spec in, family out, with
    the break script alongside — importable straight off the package."""
    sitegen = importlib.import_module("repro.sitegen")
    family = importlib.import_module("repro.sitegen.family")
    breaks = importlib.import_module("repro.sitegen.breaks")
    for name in ("FamilySpec", "BreakScript", "generate_family"):
        assert name in sitegen.__all__, f"repro.sitegen.__all__ missing {name}"
    assert sitegen.FamilySpec is family.FamilySpec
    assert sitegen.generate_family is family.generate_family
    assert sitegen.BreakScript is breaks.BreakScript


def test_net_exports_resolve_lazily():
    runtime = importlib.import_module("repro.runtime")
    net = importlib.import_module("repro.runtime.net")
    for name in ("NetConfig", "WrapperHTTPServer", "serve_http"):
        assert name in runtime.__all__
        assert getattr(runtime, name) is getattr(net, name)


def test_placement_has_one_home():
    """Every layer must place keys with the SAME function objects: the
    store's seed-era re-exports, the facade exports, and the cluster
    package all resolve to repro.cluster.placement."""
    placement = importlib.import_module("repro.cluster.placement")
    store = importlib.import_module("repro.runtime.store")
    runtime = importlib.import_module("repro.runtime")
    api = importlib.import_module("repro.api")
    for name in ("site_key_of", "shard_index"):
        target = getattr(placement, name)
        assert getattr(store, name) is target
        assert getattr(runtime, name) is target
        assert getattr(api, name) is target
    assert store.DEFAULT_SHARDS == placement.DEFAULT_SHARDS


def test_router_client_resolves_lazily_from_cluster():
    cluster = importlib.import_module("repro.cluster")
    router = importlib.import_module("repro.cluster.router")
    assert "RouterClient" in cluster.__all__
    assert cluster.RouterClient is router.RouterClient


def test_top_level_dom_convenience_exports():
    """Examples and docstrings address TextNode / to_html at the root —
    no more reaching into repro.dom.node / repro.dom.serialize."""
    import repro
    from repro.dom.node import TextNode
    from repro.dom.serialize import to_html

    assert repro.TextNode is TextNode
    assert repro.to_html is to_html
    assert "TextNode" in repro.__all__
    assert "to_html" in repro.__all__


class TestDeprecatedEntryPoints:
    def test_deprecated_names_stay_out_of_dunder_all(self):
        """Star imports must be warning-free (and survive
        ``-W error::DeprecationWarning``): only touching a deprecated
        name warns, so the shims cannot live in ``__all__``."""
        import repro
        import repro.runtime

        assert "WrapperInducer" not in repro.__all__
        assert "induce" not in repro.__all__
        assert "BatchExtractor" not in repro.runtime.__all__

    def test_star_import_is_warning_free(self):
        import repro

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            namespace: dict = {}
            exec("from repro import *", namespace)  # noqa: S102 - the point
        assert "WrapperClient" in namespace
        assert getattr(repro, "WrapperClient") is namespace["WrapperClient"]

    def test_top_level_wrapper_inducer_warns_once_and_works(self):
        import repro
        from repro.induction.induce import WrapperInducer

        repro._warned_deprecations.discard("WrapperInducer")
        with pytest.warns(DeprecationWarning, match="WrapperClient"):
            assert repro.WrapperInducer is WrapperInducer
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert repro.WrapperInducer is WrapperInducer  # second access is quiet

    def test_top_level_induce_warns_and_works(self):
        import repro
        from repro.induction.induce import induce

        repro._warned_deprecations.discard("induce")
        with pytest.warns(DeprecationWarning, match="WrapperClient"):
            assert repro.induce is induce

    def test_runtime_batch_extractor_warns_and_works(self):
        import repro.runtime
        from repro.runtime.extractor import BatchExtractor

        repro.runtime._warned_deprecations.discard("BatchExtractor")
        with pytest.warns(DeprecationWarning, match="WrapperClient.extract"):
            assert repro.runtime.BatchExtractor is BatchExtractor

    def test_unknown_attributes_still_raise(self):
        import repro
        import repro.runtime

        with pytest.raises(AttributeError):
            repro.no_such_name
        with pytest.raises(AttributeError):
            repro.runtime.no_such_name

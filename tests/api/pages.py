"""Shared fixture pages for the facade test suites."""

#: A product page, version 1: the price lives in a labeled span (with
#: enough surrounding template that wrappers anchor on structure, not
#: on trivial positionals).
PRICE_V1 = """
<html><body>
<div class="header"><input type="text" id="search"></div>
<div class="promo"><p>Subscribe now!</p></div>
<div class="article" id="main">
  <h1 class="title">Quiet Tablet 300</h1>
  <div class="row"><h4 class="lbl">Brand:</h4><span class="brand">Northwind</span></div>
  <div class="row"><h4 class="lbl">Price:</h4><span class="price">10</span></div>
</div>
<div class="footer"><p>Imprint</p></div>
</body></html>
"""

#: The same product after a redesign: the labeled span is gone.  Robust
#: induced wrappers may still locate the new element (that is the
#: paper's point), but the canonical fingerprint moves and the ensemble
#: splinters — a drift, one way or another.
PRICE_V2 = """
<html><body>
<section id="content">
  <p class="cost-label">Cost</p>
  <em class="cost">12</em>
</section>
</body></html>
"""

#: The product page with the data removed outright: every query comes
#: back empty — the hard ``empty_result`` signal.
PRICE_GONE = """
<html><body>
<div id="maintenance"><p>We are down for maintenance.</p></div>
</body></html>
"""

#: A review list: one header row, five data rows.
LIST_PAGE = """
<html><body>
<table class="grid">
  <tr class="head"><td><b>Latest Reviews</b></td></tr>
  <tr><td><a href="/r/1">Quiet Tablet 300</a></td></tr>
  <tr><td><a href="/r/2">Rapid Phone 800</a></td></tr>
  <tr><td><a href="/r/3">Golden Laptop 200</a></td></tr>
  <tr><td><a href="/r/4">Electric Watch 500</a></td></tr>
  <tr><td><a href="/r/5">Hidden Camera 1100</a></td></tr>
</table>
</body></html>
"""

#: A search-results page with three records (anchor + title + price).
RECORD_PAGE = """
<html><body>
<div id="results">
  <div class="s-item"><h2><a href="/p/1">Quiet Tablet 300</a></h2>
    <span class="price">$199.00</span></div>
  <div class="s-item"><h2><a href="/p/2">Rapid Phone 800</a></h2>
    <span class="price">$649.00</span></div>
  <div class="s-item"><h2><a href="/p/3">Golden Laptop 200</a></h2>
    <span class="price">$1099.00</span></div>
</div>
</body></html>
"""

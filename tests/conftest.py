"""Shared fixtures: representative documents used across the test suite."""

from __future__ import annotations

import pytest

from repro.dom import parse_html


IMDB_LIKE = """
<html><head><title>The Movie</title></head><body>
<div class="header">
  <ul><li><a href="/movies">Movies</a></li><li><a href="/tv">TV</a></li></ul>
  <input type="text" name="q" id="suggestion-search">
</div>
<div class="promo"><p>ad one</p></div>
<div class="promo"><p>ad two</p></div>
<div class="article" id="main">
  <h1 itemprop="name">The Movie</h1>
  <div class="txt-block"><h4 class="inline">Director:</h4>
    <a href="/name/1"><span itemprop="name" class="itemprop">Martin Scorsese</span></a></div>
  <div class="txt-block"><h4 class="inline">Writers:</h4>
    <span itemprop="name" class="itemprop">Nicholas Pileggi</span>
    <span itemprop="name" class="itemprop">Paul Attanasio</span></div>
  <table class="cast_list">
    <tr class="head"><td>Cast</td></tr>
    <tr><td class="name"><a>Robert De Niro</a></td></tr>
    <tr><td class="name"><a>Sharon Stone</a></td></tr>
    <tr><td class="name"><a>Joe Pesci</a></td></tr>
  </table>
</div>
<div class="footer"><p>Terms</p></div>
</body></html>
"""

LIST_PAGE = """
<html><body>
<div id="nav"><a href="/">home</a></div>
<div class="widePanel">
  <h3 class="hd">Channels</h3>
  <ul class="list">
    <li><a class="hpCH" href="/c1">One</a></li>
    <li><a class="hpCH" href="/c2">Two</a></li>
    <li><a class="hpCH" href="/c3">Three</a></li>
    <li><a class="hpCH" href="/c4">Four</a></li>
  </ul>
  <p class="note">sponsored</p>
</div>
</body></html>
"""


@pytest.fixture
def imdb_doc():
    return parse_html(IMDB_LIKE)


@pytest.fixture
def list_doc():
    return parse_html(LIST_PAGE)

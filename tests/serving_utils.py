"""The one ``serve --listen`` subprocess harness.

The parity suite, the cluster tests, and the cluster benchmark all
drive *live* serving subprocesses; this module is the single copy of
the spawn/teardown logic (ephemeral port, "listening on" handshake,
hang guard) so a change to the server's ready line or startup behavior
is fixed in one place.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import repro


def spawn_listen(*extra_args: str, deadline_s: float = 60.0):
    """A live ``serve --listen`` subprocess on an ephemeral port.

    Returns ``(process, host, port)``; the caller owns termination
    (see :func:`terminate`).
    """
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ, PYTHONUNBUFFERED="1")
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.runtime",
            "serve",
            "--listen",
            "127.0.0.1:0",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + deadline_s
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "listening on" in line:
            break
        if proc.poll() is not None:
            raise RuntimeError(f"serve --listen died: {line}")
    else:  # pragma: no cover - hang guard
        proc.kill()
        raise RuntimeError("serve --listen never reported its port")
    address = line.split("listening on ", 1)[1].split(" ")[0]
    host, port = address.rsplit(":", 1)
    return proc, host, int(port)


def terminate(procs, timeout: float = 10.0) -> None:
    """Terminate spawned servers, politely and in parallel.

    A server that ignores SIGTERM past ``timeout`` (wedged event loop,
    blocked executor thread) is escalated to ``kill()`` and always
    reaped with a final ``wait()`` — a leaked subprocess outlives the
    test run and holds its port.
    """
    for proc in procs:
        proc.terminate()
    stubborn = []
    for proc in procs:
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            stubborn.append(proc)
    for proc in stubborn:
        proc.kill()
    for proc in stubborn:
        proc.wait()


__all__ = ["spawn_listen", "terminate"]

"""Integration tests for the experiment harnesses (small workloads)."""

import pytest

from repro.experiments.change_rate import ChangeRateStats
from repro.experiments.characteristics import analyze_queries, top_labels
from repro.experiments.noise_study import (
    build_noise_samples,
    noise_resistance_curve,
    run_ner_study,
)
from repro.experiments.robustness_study import run_study, run_task
from repro.experiments.runtime import measure_induction_runtime
from repro.experiments.reporting import banner, format_series, format_table
from repro.sites import multi_node_tasks, single_node_tasks
from repro.xpath import parse_query


@pytest.fixture(scope="module")
def small_single_study():
    return run_study(single_node_tasks(limit=4), n_snapshots=30)


@pytest.fixture(scope="module")
def small_multi_study():
    return run_study(multi_node_tasks(limit=3), n_snapshots=30)


class TestRobustnessStudy:
    def test_all_three_wrappers_recorded(self, small_single_study):
        for outcome in small_single_study.outcomes:
            assert set(outcome.records) >= {"generated", "manual", "canonical"}

    def test_valid_days_bounded_by_window(self, small_single_study):
        for outcome in small_single_study.outcomes:
            for record in outcome.records.values():
                assert 0 <= record.valid_days <= small_single_study.max_days

    def test_groups_assigned(self, small_single_study):
        assert all(o.group in "abcdef" for o in small_single_study.outcomes)

    def test_density_integrates_to_one(self, small_single_study):
        centers, density = small_single_study.density("generated", bins=10)
        width = centers[1] - centers[0]
        assert pytest.approx(density.sum() * width, rel=1e-6) == 1.0

    def test_summary_fields(self, small_single_study):
        summary = small_single_study.summary("generated")
        assert summary["n"] == 4
        assert (
            summary["under_100"] + summary["between_100_400"] + summary["over_400"]
            == 4
        )

    def test_extra_ranks(self):
        task = single_node_tasks(limit=1)[0]
        outcome = run_task(task, n_snapshots=10, extra_ranks=(3,))
        assert "generated_rank3" in outcome.records

    def test_multi_study_runs(self, small_multi_study):
        assert len(small_multi_study.outcomes) == 3


class TestChangeRate:
    def test_stats_from_study(self, small_single_study):
        stats = ChangeRateStats.from_study(small_single_study)
        assert stats.n == 4
        assert stats.maximum >= 0
        assert stats.average >= 0


class TestCharacteristics:
    def test_analyze_known_queries(self):
        queries = [
            parse_query('descendant::div[@id="a"]/descendant::span[2]'),
            parse_query('descendant::input[@name="q"]'),
        ]
        stats = analyze_queries(queries)
        assert stats.n_queries == 2
        assert stats.step_count_distribution == {2: 1, 1: 1}
        assert stats.total_steps == 3
        assert stats.predicates_by_step[(1, "id")] == 1
        assert stats.predicates_by_step[(2, "positional")] == 1
        assert stats.predicates_by_step[(1, "name")] == 1

    def test_top_labels_folds_tail(self):
        from collections import Counter

        counter = Counter({"a": 5, "b": 3, "c": 1, "d": 1})
        rows = top_labels(counter, limit=2)
        assert rows == [("a", 5), ("b", 3), ("other", 2)]


class TestNoiseStudy:
    def test_curve_monotone_data_shape(self):
        samples = build_noise_samples(limit=3)
        assert samples
        points = noise_resistance_curve(samples, "positive_random", [0.1, 0.5])
        assert all(0 <= p.identical_rate <= 1 for p in points)
        assert all(p.total == len(samples) for p in points)

    def test_identical_at_zero_intensity(self):
        samples = build_noise_samples(limit=3)
        points = noise_resistance_curve(samples, "negative_random", [0.0])
        assert points[0].identical_rate == 1.0

    def test_ner_study(self):
        result = run_ner_study(n_pages=4, sizes=(8, 12))
        assert len(result.pages) == 4
        assert 0 <= result.success_rate <= 1
        assert result.avg_negative_noise >= 0


class TestRuntime:
    def test_measures_tasks(self):
        stats = measure_induction_runtime(limit=3)
        assert stats.n == 3
        assert stats.min_s <= stats.median_s <= stats.max_s


class TestReporting:
    def test_format_table_aligns(self):
        out = format_table(["col", "x"], [["a", 1], ["bbbb", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")

    def test_format_series(self):
        out = format_series("s", [1.0, 2.0], [0.5, 0.25])
        assert "# s" in out and "0.5000" in out

    def test_banner(self):
        assert "Title" in banner("Title")

"""Unit-level tests for the Sec. 6.1 comparison harnesses (small configs)."""

import pytest

from repro.experiments.sota import (
    dalvi_comparison,
    render_template_variant,
    weir_comparison,
)
from repro.sites.verticals import make_travel_site


class TestDalviComparison:
    def test_small_run_shape(self):
        results = dalvi_comparison(n_snapshots=5, snapshot_stride=2, periods=(0,))
        assert len(results) == 1
        result = results[0]
        assert 0.0 <= result.ours <= 1.0
        assert 0.0 <= result.treeedit <= 1.0
        assert result.transitions >= 1

    def test_multiple_periods(self):
        results = dalvi_comparison(n_snapshots=4, snapshot_stride=2, periods=(0, 4))
        assert len(results) == 2
        assert results[0].period != results[1].period


class TestTemplateVariants:
    def test_same_template_different_data(self):
        spec = make_travel_site(0)
        a = render_template_variant(spec, 1)
        b = render_template_variant(spec, 2)
        hotel_a = a.find_by_meta("role", "hotel")[0]
        hotel_b = b.find_by_meta("role", "hotel")[0]
        assert hotel_a.tag == hotel_b.tag
        assert hotel_a.attrs == hotel_b.attrs  # same template
        assert a.normalized_text(hotel_a) != b.normalized_text(hotel_b)  # new data

    def test_variant_urls_differ(self):
        spec = make_travel_site(0)
        assert render_template_variant(spec, 1).url != render_template_variant(spec, 2).url


class TestWeirComparison:
    def test_small_run(self):
        result = weir_comparison(n_pages=4, n_runs=2, n_snapshots=16)
        assert result.n_runs >= 1
        assert 0.0 <= result.ours_top10_avg <= 1.0
        assert 0.0 <= result.weir_avg <= 1.0
        assert result.weir_expressions_avg >= 1

"""Fault injection against the replicated cluster: kill hosts, keep serving.

The robustness contracts of the failover PR, each tested against live
subprocesses and real SIGKILL:

* a host killed mid-``extract_many`` is invisible — the batch completes
  through the replicas with zero client-visible errors and results
  byte-identical to a healthy run;
* with BOTH replicas of a shard dead, its keys fail with typed,
  host-attributed errors (never a hang), while other shards keep
  serving;
* the per-host circuit breaker opens after consecutive failures so a
  dead host stops costing a connect timeout per request;
* after an operator re-shard (``migrate`` to a new epoch), a router
  holding the stale map learns the new topology from the first typed
  421 and keeps serving without a restart.
"""

import subprocess
import sys
import time

import pytest

from repro import (
    ClusterMap,
    RemoteError,
    RouterClient,
    Sample,
    WrapperClient,
    mark_volatile,
    parse_html,
)
from repro.cluster.placement import replica_indexes, shard_index
from repro.runtime.store import ShardedArtifactStore, migrate_store

from tests.api.pages import PRICE_V1
from tests.cluster.faults import env_telemetry_sink, spawn_replicated

# Placement facts (pinned by the golden fixture): at 8 shards / 3 hosts,
# "shop-1" → shard 6 → replicas (host 0, host 1); "shop-0" → shard 7 →
# replicas (host 1, host 2).
EVEN_KEY = "shop-1/price"
ODD_KEY = "shop-0/price"


def price_sample():
    doc = parse_html(PRICE_V1)
    target = doc.find(tag="span", class_="price")
    mark_volatile(target)
    return Sample(doc, [target])


@pytest.fixture()
def seeded_cluster(tmp_path):
    """A 3-host replicated cluster over one shared store holding both
    test wrappers, plus the local seed client (the byte-identical
    reference)."""
    store_root = tmp_path / "store"
    seed = WrapperClient(store=store_root, shards=8)
    seed.induce(EVEN_KEY, [price_sample()])
    seed.induce(ODD_KEY, [price_sample()])
    cluster = spawn_replicated(n_hosts=3, n_shards=8, store_root=store_root)
    try:
        yield cluster, seed
    finally:
        cluster.close()


def make_router(cluster, **overrides) -> RouterClient:
    options = dict(connect_timeout=2.0, telemetry_sink=env_telemetry_sink())
    options.update(overrides)
    return RouterClient(cluster.cluster_map, **options)


class TestKillMidBatch:
    def test_host_killed_mid_batch_is_invisible(self, seeded_cluster):
        cluster, seed = seeded_cluster
        items = [(EVEN_KEY, PRICE_V1), (ODD_KEY, PRICE_V1)] * 30
        expected = [seed.extract(key, page).to_payload() for key, page in items]
        with make_router(cluster) as router:
            victim = router.host_of(EVEN_KEY)
            killer = cluster.kill_after(victim, delay_s=0.15)
            try:
                results = router.extract_many(items, return_errors=True)
            finally:
                killer.join()
            errors = [r for r in results if isinstance(r, BaseException)]
            assert errors == [], f"failover leaked errors to the client: {errors[:3]}"
            assert [r.to_payload() for r in results] == expected

    def test_single_verb_fails_over_to_the_replica(self, seeded_cluster):
        cluster, _ = seeded_cluster
        with make_router(cluster) as router:
            victim = cluster.kill(router.host_of(EVEN_KEY))
            result = router.extract(EVEN_KEY, PRICE_V1)
            assert result.values == ("10",)
            failovers = [
                e for e in router.telemetry if e["event"] == "failover"
            ]
            assert any(e["host"] == victim for e in failovers)

    def test_replicated_writes_survive_a_dead_replica(self, seeded_cluster):
        cluster, _ = seeded_cluster
        with make_router(cluster) as router:
            secondary = router.replica_hosts(EVEN_KEY)[1]
            cluster.kill(secondary)
            handle = router.induce("shop-1/title", [price_sample()])
            assert handle.site_key == "shop-1/title"
            assert router.extract("shop-1/title", PRICE_V1).values == ("10",)
            repairs = [
                e
                for e in router.telemetry
                if e["event"] == "write_repair_needed"
            ]
            assert any(e["host"] == secondary for e in repairs)


class TestBothReplicasDead:
    def test_typed_per_key_errors_not_a_hang(self, seeded_cluster):
        cluster, _ = seeded_cluster
        with make_router(cluster) as router:
            doomed = router.replica_hosts(EVEN_KEY)
            assert len(doomed) == 2
            for host in doomed:
                cluster.kill(host)
            started = time.monotonic()
            results = router.extract_many(
                [(EVEN_KEY, PRICE_V1), (ODD_KEY, PRICE_V1)], return_errors=True
            )
            assert time.monotonic() - started < 60.0
            assert isinstance(results[0], RemoteError)
            assert results[0].address in doomed  # names a host that died
            # The other shard still has a live replica and keeps serving.
            assert results[1].values == ("10",)
            with pytest.raises(RemoteError):
                router.extract(EVEN_KEY, PRICE_V1)


class TestCircuitBreaker:
    def test_breaker_opens_and_skips_the_dead_host(self, seeded_cluster):
        cluster, _ = seeded_cluster
        with make_router(
            cluster, breaker_threshold=2, breaker_reset_s=60.0
        ) as router:
            victim = cluster.kill(router.host_of(EVEN_KEY))
            for _ in range(3):
                assert router.extract(EVEN_KEY, PRICE_V1).values == ("10",)
            opened = [
                e for e in router.telemetry if e["event"] == "breaker_open"
            ]
            assert [e["host"] for e in opened] == [victim]
            # Once open, the dead host is skipped without a connect:
            # the verb is served by the replica alone, quickly.
            started = time.monotonic()
            assert router.extract(EVEN_KEY, PRICE_V1).values == ("10",)
            assert time.monotonic() - started < 2.0


class TestReshardEpochRefresh:
    @staticmethod
    def stale_miss_key(n_hosts=3, old_shards=8, new_shards=12) -> str:
        """A site key whose *old-map* primary does not own its
        *new-topology* shard — guaranteed to draw a 421 from a stale
        router, which is the refresh path under test.  (A doubling
        re-shard on 3 hosts can never miss — ``+8 ≡ +2 (mod 3)`` puts
        the old primary back in every replica pair — so this test
        re-shards 8 → 12.)"""
        for k in range(100):
            site = f"shop-{k}"
            stale_primary = shard_index(site, old_shards) % n_hosts
            new_owners = replica_indexes(shard_index(site, new_shards), n_hosts)
            if stale_primary not in new_owners:
                return f"{site}/price"
        raise AssertionError("no stale-miss key in range")  # pragma: no cover

    def test_router_follows_a_reshard_without_restart(self, tmp_path):
        key = self.stale_miss_key()
        src_root = tmp_path / "store-v0"
        seed = WrapperClient(store=src_root, shards=8)
        seed.induce(key, [price_sample()])

        dest_root = tmp_path / "store-v1"
        plan = migrate_store(src_root, dest_root, n_shards=12)
        assert plan.dest_epoch == 1

        cluster = spawn_replicated(n_hosts=3, n_shards=12, store_root=dest_root)
        try:
            # The router still holds the PRE-migration map: 8 shards,
            # epoch 0.  The first 421 carries epoch 1 and triggers one
            # /healthz refresh; the retry lands on the true owner.
            stale_map = ClusterMap(cluster.hosts, 8, epoch=0)
            with RouterClient(
                stale_map, connect_timeout=2.0, telemetry_sink=env_telemetry_sink()
            ) as router:
                assert router.extract(key, PRICE_V1).values == ("10",)
                assert router.epoch == 1
                events = [e["event"] for e in router.telemetry]
                assert "map_refresh" in events
        finally:
            cluster.close()

    def test_migrate_cli_dry_run_then_cutover(self, tmp_path):
        src_root = tmp_path / "store-v0"
        seed = WrapperClient(store=src_root, shards=8)
        seed.induce(EVEN_KEY, [price_sample()])
        seed.induce(ODD_KEY, [price_sample()])
        dest_root = tmp_path / "store-v1"

        def run_migrate(*flags):
            return subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.runtime",
                    "migrate",
                    "--store",
                    str(src_root),
                    "--dest",
                    str(dest_root),
                    "--shards",
                    "16",
                    *flags,
                ],
                capture_output=True,
                text=True,
            )

        dry = run_migrate("--dry-run")
        assert dry.returncode == 0, dry.stderr
        assert "DRY RUN" in dry.stdout
        assert not dest_root.exists(), "dry run must not create the destination"

        real = run_migrate()
        assert real.returncode == 0, real.stderr
        migrated = ShardedArtifactStore(dest_root)
        assert migrated.epoch == 1
        assert migrated.n_shards == 16
        served = WrapperClient(store=dest_root, shards=16)
        assert sorted(served.keys()) == sorted([EVEN_KEY, ODD_KEY])
        assert served.extract(EVEN_KEY, PRICE_V1).values == ("10",)

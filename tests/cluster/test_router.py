"""Cluster failure paths and tenancy, against live serving hosts.

Three contracts under test:

* a shard-owning host answers requests for keys it does not own with
  the *typed* ownership error (never data, never a generic 4xx blur);
* a dead host is a per-key failure: the router keeps serving every key
  owned by live hosts, and each failed item names the host that failed;
* tenants are isolated end to end — same bare site key, two tenants,
  distinct artifacts, distinct store paths, distinct telemetry streams,
  and no cross-namespace reads.
"""

import pytest

from repro import (
    ClusterMap,
    FacadeError,
    OwnershipError,
    RemoteError,
    RemoteWrapperClient,
    RouterClient,
    Sample,
    WrapperClient,
    mark_volatile,
    parse_html,
)
from repro.cluster.placement import shard_of_task

from tests.api.pages import PRICE_V1
from tests.cluster.conftest import dead_address, spawn_listen

# Placement facts the tests below rely on (pinned by the golden
# fixture): "shop-1" → shard 6 (even → host 0 of a 2-host map),
# "shop-0"/"parity" → odd shards (host 1).
EVEN_KEY = "shop-1/price"  # shard 6
ODD_KEY = "shop-0/price"  # shard 7


def price_sample():
    doc = parse_html(PRICE_V1)
    target = doc.find(tag="span", class_="price")
    mark_volatile(target)
    return Sample(doc, [target])


class TestOwnershipRejection:
    def test_unowned_key_is_a_typed_error(self, cluster_hosts):
        even_host, _ = cluster_hosts
        with RemoteWrapperClient(even_host) as client:
            with pytest.raises(OwnershipError) as excinfo:
                client.induce(ODD_KEY, [price_sample()])
        err = excinfo.value
        assert err.shard == shard_of_task(ODD_KEY, 8) == 7
        assert err.owned == (0, 2, 4, 6)
        assert err.n_shards == 8
        assert err.site_key == ODD_KEY

    def test_every_keyed_verb_is_gated(self, cluster_hosts):
        even_host, _ = cluster_hosts
        with RemoteWrapperClient(even_host) as client:
            with pytest.raises(OwnershipError):
                client.extract(ODD_KEY, PRICE_V1)
            with pytest.raises(OwnershipError):
                client.check(ODD_KEY, PRICE_V1)
            with pytest.raises(OwnershipError):
                client.get(ODD_KEY)
            with pytest.raises(OwnershipError):
                client.delete(ODD_KEY)

    def test_owned_keys_still_serve(self, cluster_hosts):
        even_host, _ = cluster_hosts
        with RemoteWrapperClient(even_host) as client:
            handle = client.induce(EVEN_KEY, [price_sample()])
            assert handle.site_key == EVEN_KEY
            assert client.extract(EVEN_KEY, PRICE_V1).values == ("10",)

    def test_healthz_reports_owned_shards(self, cluster_hosts):
        even_host, odd_host = cluster_hosts
        with RemoteWrapperClient(even_host) as client:
            assert client.healthz()["shards"] == {
                "n_shards": 8,
                "owned": [0, 2, 4, 6],
            }
        with RemoteWrapperClient(odd_host) as client:
            assert client.healthz()["shards"]["owned"] == [1, 3, 5, 7]


class TestRouter:
    def test_routes_to_the_owner_and_scatter_gathers(self, cluster_hosts):
        with RouterClient(ClusterMap(cluster_hosts, 8)) as router:
            router.induce(EVEN_KEY, [price_sample()])
            router.induce(ODD_KEY, [price_sample()])
            # Each host holds exactly the key it owns...
            with RemoteWrapperClient(cluster_hosts[0]) as even:
                assert EVEN_KEY in even.keys() and ODD_KEY not in even.keys()
            # ...and the router's listing is the exact union.
            assert set(router.keys()) >= {EVEN_KEY, ODD_KEY}
            assert {h.site_key for h in router.handles()} == set(router.keys())
            assert router.extract(ODD_KEY, PRICE_V1).values == ("10",)
            assert EVEN_KEY in router
            router.delete(EVEN_KEY)
            assert EVEN_KEY not in router

    def test_extract_many_spans_hosts_in_item_order(self, cluster_hosts):
        with RouterClient(ClusterMap(cluster_hosts, 8)) as router:
            router.induce(EVEN_KEY, [price_sample()])
            router.induce(ODD_KEY, [price_sample()])
            items = [(EVEN_KEY, PRICE_V1), (ODD_KEY, PRICE_V1)] * 3
            results = router.extract_many(items)
            assert [r.site_key for r in results] == [key for key, _ in items]
            assert all(r.values == ("10",) for r in results)

    def test_dead_host_fails_per_key_without_poisoning_live_hosts(
        self, cluster_hosts
    ):
        live_even = cluster_hosts[0]
        dead = dead_address()
        # Host order matters for ownership: the live host keeps the even
        # shards it actually owns; the dead address owns the odd group.
        with RouterClient(
            ClusterMap((live_even, dead), 8), connect_timeout=2.0
        ) as router:
            router.induce(EVEN_KEY, [price_sample()])
            items = [(EVEN_KEY, PRICE_V1), (ODD_KEY, PRICE_V1), (EVEN_KEY, PRICE_V1)]
            results = router.extract_many(items, return_errors=True)
            assert results[0].values == ("10",)
            assert results[2].values == ("10",)
            assert isinstance(results[1], RemoteError)
            assert results[1].address == dead  # failure names its host
            # Single-key verbs: the dead host fails its keys only.
            with pytest.raises(RemoteError):
                router.extract(ODD_KEY, PRICE_V1)
            assert router.extract(EVEN_KEY, PRICE_V1).values == ("10",)

    def test_extract_many_without_return_errors_raises(self, cluster_hosts):
        live_even = cluster_hosts[0]
        with RouterClient(
            ClusterMap((live_even, dead_address()), 8), connect_timeout=2.0
        ) as router:
            router.induce(EVEN_KEY, [price_sample()])
            with pytest.raises(RemoteError):
                router.extract_many([(EVEN_KEY, PRICE_V1), (ODD_KEY, PRICE_V1)])

    def test_router_healthz_isolates_the_dead_host(self, cluster_hosts):
        live_even = cluster_hosts[0]
        dead = dead_address()
        with RouterClient(
            ClusterMap((live_even, dead), 8), connect_timeout=2.0
        ) as router:
            health = router.healthz()
            assert health[live_even]["ok"] is True
            assert health[dead]["ok"] is False and "error" in health[dead]


class TestSharedStoreCluster:
    def test_hosts_sharing_one_store_list_only_owned_shards(self, tmp_path):
        """The documented deployment: N hosts over ONE store, disjoint
        shard groups.  Each host's listing must cover only its group,
        so the router's scatter-gather union is exact (no duplicates)."""
        store_root = tmp_path / "store"
        seed = WrapperClient(store=store_root, shards=8)
        seed.induce(EVEN_KEY, [price_sample()])
        seed.induce(ODD_KEY, [price_sample()])

        procs, hosts = [], []
        try:
            for own in ("0,2,4,6", "1,3,5,7"):
                proc, host, port = spawn_listen(
                    "--artifacts", str(store_root), "--own-shards", own
                )
                procs.append(proc)
                hosts.append(f"{host}:{port}")
            with RemoteWrapperClient(hosts[0]) as even:
                assert even.keys() == [EVEN_KEY]
                assert even.healthz()["wrappers"] == 1
            with RemoteWrapperClient(hosts[1]) as odd:
                assert odd.keys() == [ODD_KEY]
            with RouterClient(ClusterMap(tuple(hosts), 8)) as router:
                assert router.keys() == sorted([EVEN_KEY, ODD_KEY])
                assert len(router) == 2  # union, not once-per-host
                assert router.extract(EVEN_KEY, PRICE_V1).values == ("10",)
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                proc.wait(timeout=10)


class TestRemoteTimeoutsAndErrors:
    def test_connection_refused_is_a_remote_error_with_address(self):
        host, port = dead_address().rsplit(":", 1)
        client = RemoteWrapperClient(host, int(port), connect_timeout=2.0)
        with pytest.raises(RemoteError) as excinfo:
            client.healthz()
        assert excinfo.value.host == host
        assert excinfo.value.port == int(port)
        assert f"{host}:{port}" in str(excinfo.value)

    def test_timeout_split_defaults_from_legacy_timeout(self):
        client = RemoteWrapperClient("example.test", 80, timeout=7.5)
        assert client.connect_timeout == 7.5 and client.read_timeout == 7.5
        split = RemoteWrapperClient(
            "example.test", 80, connect_timeout=1.0, read_timeout=30.0
        )
        assert split.connect_timeout == 1.0 and split.read_timeout == 30.0
        clone = split.clone()
        assert (clone.connect_timeout, clone.read_timeout) == (1.0, 30.0)


class TestTenantIsolation:
    def test_same_site_key_two_tenants_no_cross_talk(self, tmp_path):
        store_root = tmp_path / "store"
        acme = WrapperClient(store=store_root, tenant="acme")
        globex = WrapperClient(store=acme.store, tenant="globex")

        acme_handle = acme.induce("shop-0/price", [price_sample()])
        globex_handle = globex.induce("shop-0/price", [price_sample()])
        assert acme_handle.site_key == "acme::shop-0/price"
        assert acme_handle.tenant == "acme"
        assert globex_handle.tenant == "globex"

        store = acme.store
        # Distinct artifacts at distinct store paths...
        path_a = store.path_of("acme::shop-0/price")
        path_b = store.path_of("globex::shop-0/price")
        assert path_a != path_b and path_a.exists() and path_b.exists()
        # ...and distinct per-tenant telemetry streams.
        assert store.reports_path("acme::shop-0/price") != store.reports_path(
            "globex::shop-0/price"
        )

        # Listings are namespace-scoped; payloads carry the tenant.
        assert acme.keys() == ["acme::shop-0/price"]
        assert globex.keys() == ["globex::shop-0/price"]
        assert acme.extract("shop-0/price", PRICE_V1).to_payload()["tenant"] == "acme"

        # Deleting one tenant's wrapper leaves the other's intact.
        acme.delete("shop-0/price")
        assert "shop-0/price" not in acme
        assert "shop-0/price" in globex

    def test_cross_tenant_access_is_rejected(self, tmp_path):
        acme = WrapperClient(store=tmp_path / "store", tenant="acme")
        acme.induce("shop-0/price", [price_sample()])
        globex = WrapperClient(store=acme.store, tenant="globex")
        with pytest.raises(FacadeError, match="cross-tenant"):
            globex.get("acme::shop-0/price")
        assert "acme::shop-0/price" not in globex

    def test_admin_default_tenant_sees_every_namespace(self, tmp_path):
        acme = WrapperClient(store=tmp_path / "store", tenant="acme")
        acme.induce("shop-0/price", [price_sample()])
        admin = WrapperClient(store=acme.store)
        assert admin.keys() == ["acme::shop-0/price"]
        assert admin.get("acme::shop-0/price").tenant == "acme"

    def test_deploy_qualifies_into_the_tenant_namespace(self, tmp_path):
        """A tenant-scoped client deploys prebuilt artifacts into its
        own namespace — otherwise the wrapper is stored under the bare
        key and unreachable through every tenant-qualified verb."""
        seed = WrapperClient()
        seed.induce("shop-0/price", [price_sample()])
        artifact = seed.artifact("shop-0/price")

        acme = WrapperClient(store=tmp_path / "store", tenant="acme")
        handle = acme.deploy(artifact)
        assert handle.site_key == "acme::shop-0/price"
        assert acme.keys() == ["acme::shop-0/price"]
        assert acme.extract("shop-0/price", PRICE_V1).values == ("10",)
        # An artifact already owned by another tenant is rejected.
        globex = WrapperClient(tenant="globex")
        with pytest.raises(FacadeError, match="cross-tenant"):
            globex.deploy(acme.artifact("shop-0/price"))

    def test_contains_parity_for_cross_tenant_keys(self, cluster_hosts):
        """`in` must answer False (not raise) for keys the client could
        never address, identically on all three backends."""
        even_host, _ = cluster_hosts
        alien = "globex::shop-0/price"
        assert alien not in WrapperClient(tenant="acme")
        with RemoteWrapperClient(even_host, tenant="acme") as remote:
            assert alien not in remote
        with RouterClient(ClusterMap(cluster_hosts, 8), tenant="acme") as router:
            assert alien not in router

    def test_router_extract_many_isolates_unroutable_items(self, cluster_hosts):
        """A cross-tenant item fails per item, not the whole batch —
        including the degenerate batch where NO item is routable."""
        with RouterClient(ClusterMap(cluster_hosts, 8), tenant="acme") as router:
            router.induce(EVEN_KEY, [price_sample()])
            results = router.extract_many(
                [(EVEN_KEY, PRICE_V1), ("globex::x/y", PRICE_V1)],
                return_errors=True,
            )
            assert results[0].values == ("10",)
            assert isinstance(results[1], FacadeError)
            all_bad = router.extract_many(
                [("globex::x/y", PRICE_V1)], return_errors=True
            )
            assert isinstance(all_bad[0], FacadeError)
            with pytest.raises(FacadeError):
                router.extract_many([("globex::x/y", PRICE_V1)])

    def test_extract_many_signature_is_uniform(self, tmp_path, cluster_hosts):
        """`extract_many(items, *, concurrency=, return_errors=)` must
        be accepted by all three clients — drop-in means tuning kwargs
        cannot TypeError when the backend is swapped."""
        local = WrapperClient()
        local.induce(EVEN_KEY, [price_sample()])
        assert local.extract_many(
            [(EVEN_KEY, PRICE_V1)], concurrency=8
        )[0].values == ("10",)
        with RouterClient(ClusterMap(cluster_hosts, 8)) as router:
            router.induce(EVEN_KEY, [price_sample()])
            for client in (
                RemoteWrapperClient(router.host_of(EVEN_KEY)),
                router,
            ):
                results = client.extract_many(
                    [(EVEN_KEY, PRICE_V1)], concurrency=8, return_errors=True
                )
                assert results[0].values == ("10",)

    def test_invalid_tenant_fails_fast_everywhere(self):
        import subprocess
        import sys

        with pytest.raises(FacadeError):
            WrapperClient(tenant="bad tenant")
        with pytest.raises(FacadeError):
            RemoteWrapperClient("h", 1, tenant="bad tenant")
        with pytest.raises(FacadeError):
            RouterClient(("h:1",), tenant="bad tenant")
        # The CLI turns it into a clean usage error, not a traceback.
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.runtime",
                "induce",
                "--out",
                "unused-dir",
                "--tenant",
                "bad tenant",
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "invalid tenant" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_cluster_flags_without_listen_are_rejected(self):
        """`serve` without --listen must refuse --tenant/--own-shards/
        --shards instead of silently faking a scoped deployment."""
        import subprocess
        import sys

        for flags in (["--tenant", "acme"], ["--own-shards", "0"], ["--shards", "8"]):
            proc = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.runtime",
                    "serve",
                    "--artifacts",
                    "unused-dir",
                    *flags,
                ],
                capture_output=True,
                text=True,
            )
            assert proc.returncode == 1
            assert "requires --listen" in proc.stderr
            assert "Traceback" not in proc.stderr

    def test_remote_tenants_are_isolated_over_the_wire(self, cluster_hosts):
        even_host, _ = cluster_hosts
        # "acme::shop-1" and "globex::shop-1" may place on any shard;
        # use whichever tenants land on this host's even shards.
        with RemoteWrapperClient(even_host) as admin:
            owned = set(admin.healthz()["shards"]["owned"])
        tenants = [
            t
            for t in ("t0", "t1", "t2", "t3", "t4", "t5")
            if shard_of_task(f"{t}::shop-1/price", 8) in owned
        ][:2]
        assert len(tenants) == 2, "need two tenants placing on the test host"
        first, second = tenants
        with RemoteWrapperClient(even_host, tenant=first) as a, RemoteWrapperClient(
            even_host, tenant=second
        ) as b:
            a.induce("shop-1/price", [price_sample()])
            assert b.keys() == []  # no cross-namespace listing
            with pytest.raises(KeyError):
                b.get("shop-1/price")
            b.induce("shop-1/price", [price_sample()])
            assert a.keys() == [f"{first}::shop-1/price"]
            assert b.extract("shop-1/price", PRICE_V1).tenant == second

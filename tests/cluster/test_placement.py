"""Placement is frozen: golden fixture + pure-function invariants.

The shard assignment is load-bearing state — artifacts already on disk
live where yesterday's function put them — so the corpus-wide
``site_key → shard_index`` table is pinned the same way induction
scores are.  A failing golden test here means stored artifacts would be
orphaned; the fix is a store migration, not a fixture refresh.
"""

import json
import pathlib

import pytest

from repro.cluster.placement import (
    ClusterMap,
    DEFAULT_SHARDS,
    PlacementError,
    REPLICATION_FACTOR,
    ShardOwnership,
    qualify_key,
    replica_indexes,
    shard_index,
    shard_of_task,
    site_key_of,
    split_tenant,
    tenant_of,
)

GOLDEN = pathlib.Path(__file__).parent.parent / "golden" / "placement.json"


class TestGoldenPlacement:
    def test_every_corpus_site_is_pinned_and_reproduced(self):
        payload = json.loads(GOLDEN.read_text())
        assert payload["n_shards"] == DEFAULT_SHARDS
        sites = payload["sites"]
        assert len(sites) == 84, "corpus size changed — regenerate deliberately"
        for site_id, pinned in sites.items():
            assert shard_index(site_id, DEFAULT_SHARDS) == pinned, (
                f"{site_id} moved off shard {pinned}: a placement change "
                "orphans stored artifacts and requires a store migration"
            )

    def test_fixture_covers_the_live_corpus(self):
        from repro.sites.corpus import build_corpus

        live = {spec.site_id for spec in build_corpus()}
        pinned = set(json.loads(GOLDEN.read_text())["sites"])
        assert live == pinned

    def test_every_shard_is_populated(self):
        sites = json.loads(GOLDEN.read_text())["sites"]
        assert set(sites.values()) == set(range(DEFAULT_SHARDS))

    def test_every_epoch_pins_shard_and_replica_set(self):
        """The epoch table freezes replica placement per topology: a
        silent change to replica derivation strands the secondary copy
        of every artifact exactly as a shard remap strands the primary."""
        payload = json.loads(GOLDEN.read_text())
        assert payload["replication"] == REPLICATION_FACTOR == 2
        epochs = payload["epochs"]
        assert set(epochs) == {"0", "1"}, "epoch set changed — migrate deliberately"
        for epoch, topology in epochs.items():
            n_shards, n_hosts = topology["n_shards"], topology["n_hosts"]
            sites = topology["sites"]
            assert len(sites) == 84
            for site_id, pinned in sites.items():
                assert shard_index(site_id, n_shards) == pinned["shard"], (
                    f"epoch {epoch}: {site_id} moved off shard "
                    f"{pinned['shard']} — requires a store migration"
                )
                assert (
                    list(replica_indexes(pinned["shard"], n_hosts))
                    == pinned["replicas"]
                )

    def test_pinned_replicas_are_on_distinct_hosts(self):
        epochs = json.loads(GOLDEN.read_text())["epochs"]
        for topology in epochs.values():
            for pinned in topology["sites"].values():
                replicas = pinned["replicas"]
                assert len(replicas) == 2
                assert replicas[0] != replicas[1], (
                    "secondary on the primary's host defeats replication"
                )

    def test_epoch_one_is_the_migrate_target_shape(self):
        epochs = json.loads(GOLDEN.read_text())["epochs"]
        assert epochs["0"]["n_shards"] == DEFAULT_SHARDS
        assert epochs["1"]["n_shards"] == 2 * DEFAULT_SHARDS


class TestKeys:
    def test_site_key_of_strips_role(self):
        assert site_key_of("movies-0/director") == "movies-0"
        assert site_key_of("movies-0") == "movies-0"

    def test_tenant_prefix_stays_in_site_key(self):
        assert site_key_of("acme::movies-0/director") == "acme::movies-0"

    def test_shard_of_task_matches_composition(self):
        task = "acme::movies-0/director"
        assert shard_of_task(task, 8) == shard_index(site_key_of(task), 8)

    def test_qualify_and_split_round_trip(self):
        qualified = qualify_key("shop-0/price", "acme")
        assert qualified == "acme::shop-0/price"
        assert split_tenant(qualified) == ("acme", "shop-0/price")
        assert tenant_of(qualified) == "acme"
        assert tenant_of("shop-0/price") == ""

    def test_qualify_is_idempotent_for_same_tenant(self):
        once = qualify_key("shop-0/price", "acme")
        assert qualify_key(once, "acme") == once

    def test_default_tenant_addresses_qualified_keys_verbatim(self):
        assert qualify_key("acme::shop-0/price", "") == "acme::shop-0/price"
        assert qualify_key("shop-0/price", "") == "shop-0/price"

    def test_cross_tenant_qualification_is_rejected(self):
        with pytest.raises(PlacementError, match="cross-tenant"):
            qualify_key("acme::shop-0/price", "globex")

    def test_invalid_tenant_names_are_rejected(self):
        for bad in ("with/slash", "::", ".hidden", "sp ace"):
            with pytest.raises(PlacementError):
                qualify_key("shop-0/price", bad)

    def test_stray_separator_inside_role_is_not_a_tenant(self):
        # Only a well-formed tenant name before any '/' re-partitions.
        assert split_tenant("shop-0/price::usd") == ("", "shop-0/price::usd")

    def test_two_tenants_same_site_key_may_shard_apart(self):
        a = shard_of_task(qualify_key("shop-0/price", "acme"), 64)
        b = shard_of_task(qualify_key("shop-0/price", "globex"), 64)
        assert a != b  # independent namespaces place independently


class TestShardOwnership:
    def test_parse_and_membership(self):
        own = ShardOwnership.parse("0,2,5", 8)
        assert own.sorted_owned() == [0, 2, 5]
        assert not own.is_total
        assert own.as_payload() == {"n_shards": 8, "owned": [0, 2, 5]}

    def test_owns_task_follows_placement(self):
        own = ShardOwnership.parse("0,1,2,3", 8)
        for task in ("movies-0/director", "acme::movies-0/director"):
            assert own.owns_task(task) == (shard_of_task(task, 8) in own.owned)

    def test_all_shards(self):
        assert ShardOwnership.all_shards(4).is_total

    def test_validation(self):
        with pytest.raises(PlacementError):
            ShardOwnership.parse("9", 8)  # out of range
        with pytest.raises(PlacementError):
            ShardOwnership.parse("", 8)  # empty group
        with pytest.raises(PlacementError):
            ShardOwnership.parse("a,b", 8)  # not integers


class TestClusterMap:
    def test_assignment_partitions_all_shards(self):
        cmap = ClusterMap(("h0:1", "h1:2", "h2:3"), n_shards=8)
        groups = cmap.assignments()
        seen = sorted(s for group in groups.values() for s in group)
        assert seen == list(range(8))  # disjoint and complete

    def test_host_of_agrees_with_ownership(self):
        cmap = ClusterMap(("h0:1", "h1:2"), n_shards=8)
        for task in ("movies-0/director", "shop-1/title", "acme::shop-0/price"):
            host = cmap.host_of(task)
            assert cmap.ownership_of(host).owns_task(task)

    def test_ownership_round_trips_through_cli_arg(self):
        cmap = ClusterMap(("h0:1", "h1:2"), n_shards=8)
        for host in cmap.hosts:
            arg = cmap.own_shards_arg(host)
            assert ShardOwnership.parse(arg, 8) == cmap.ownership_of(host)

    def test_assignment_is_pure_in_host_order(self):
        a = ClusterMap(("h0:1", "h1:2"), n_shards=8)
        b = ClusterMap(("h0:1", "h1:2"), n_shards=8)
        assert a.assignments() == b.assignments()

    def test_more_hosts_than_shards_leaves_spares_idle(self):
        cmap = ClusterMap(("h0:1", "h1:2", "h2:3"), n_shards=2)
        assert cmap.shards_of("h2:3") == ()

    def test_validation(self):
        with pytest.raises(PlacementError):
            ClusterMap((), n_shards=8)
        with pytest.raises(PlacementError):
            ClusterMap(("h0:1", "h0:1"), n_shards=8)
        with pytest.raises(PlacementError):
            ClusterMap(("not-an-address",), n_shards=8)

    def test_unknown_host_is_a_typed_error(self):
        cmap = ClusterMap(("h0:1", "h1:2"), n_shards=8)
        for call in (cmap.shards_of, cmap.ownership_of, cmap.own_shards_arg):
            with pytest.raises(PlacementError, match="not in the cluster map"):
                call("typo:9")


class TestReplicaPlacement:
    def test_replica_indexes_are_primary_plus_ring_successors(self):
        assert replica_indexes(0, 3) == (0, 1)
        assert replica_indexes(5, 3) == (2, 0)  # wraps the ring
        assert replica_indexes(4, 3, replication=3) == (1, 2, 0)

    def test_secondary_is_never_the_primary_host(self):
        for n_hosts in (2, 3, 5):
            for shard in range(32):
                replicas = replica_indexes(shard, n_hosts)
                assert len(set(replicas)) == len(replicas)

    def test_replication_caps_at_host_count(self):
        assert replica_indexes(3, 1) == (0,)  # one host: no second copy
        assert replica_indexes(3, 2, replication=5) == (1, 0)

    def test_validation(self):
        with pytest.raises(PlacementError):
            replica_indexes(0, 0)
        with pytest.raises(PlacementError):
            replica_indexes(0, 3, replication=0)

    def test_cluster_map_replica_hosts_follow_indexes(self):
        cmap = ClusterMap(("h0:1", "h1:2", "h2:3"), n_shards=8)
        for task in ("movies-0/director", "shop-1/title", "acme::shop-0/price"):
            shard = cmap.shard_of(task)
            replicas = cmap.replica_hosts(task)
            assert replicas[0] == cmap.host_of(task)  # primary first
            assert replicas == tuple(
                cmap.hosts[i] for i in replica_indexes(shard, 3)
            )

    def test_replica_ownership_is_the_union_group(self):
        """A replicated host must be launched owning its primary shards
        PLUS every shard it seconds — otherwise it 421s replica traffic."""
        cmap = ClusterMap(("h0:1", "h1:2", "h2:3"), n_shards=8)
        for host in cmap.hosts:
            union = cmap.replica_ownership_of(host)
            assert set(cmap.shards_of(host)) <= set(union.owned)
            assert set(union.owned) == set(cmap.replica_shards_of(host))
        # Every shard is seconded somewhere: union groups cover each
        # shard exactly `replication` times.
        coverage = [0] * 8
        for host in cmap.hosts:
            for shard in cmap.replica_shards_of(host):
                coverage[shard] += 1
        assert coverage == [REPLICATION_FACTOR] * 8

    def test_epoch_is_carried_and_validated(self):
        assert ClusterMap(("h0:1",), 8).epoch == 0
        cmap = ClusterMap(("h0:1", "h1:2"), 8, epoch=3)
        assert cmap.epoch == 3
        with pytest.raises(PlacementError):
            ClusterMap(("h0:1",), 8, epoch=-1)

    def test_advanced_bumps_the_epoch_and_may_reshape(self):
        cmap = ClusterMap(("h0:1", "h1:2"), 8, epoch=1)
        regrown = cmap.advanced(n_shards=16)
        assert regrown.epoch == 2
        assert regrown.n_shards == 16
        assert regrown.hosts == cmap.hosts
        assert cmap.advanced().epoch == 2  # same shape, next generation

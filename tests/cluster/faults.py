"""Fault-injection helpers for the replicated cluster tests.

One place for the machinery every failover test needs: spawning a
*replicated* topology (each host owns its primary shards PLUS every
shard it seconds, over one shared store), SIGKILL-ing a chosen host —
immediately or mid-batch from a timer thread — and persisting the
router's failover telemetry stream to a JSONL file when the
``FAILOVER_TELEMETRY`` environment variable names one (how the CI
``cluster-failover`` job captures the stream as an artifact).
"""

from __future__ import annotations

import json
import os
import signal
import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cluster.placement import ClusterMap, replica_indexes
from tests.serving_utils import spawn_listen, terminate


def replica_union_shards(index: int, n_hosts: int, n_shards: int, replication: int = 2):
    """The shards host ``index`` must own in a replicated topology:
    its primaries plus every shard it seconds."""
    return [
        shard
        for shard in range(n_shards)
        if index in replica_indexes(shard, n_hosts, replication)
    ]


def replica_union_arg(index: int, n_hosts: int, n_shards: int, replication: int = 2) -> str:
    """``--own-shards`` value for host ``index`` (see
    :func:`replica_union_shards`)."""
    return ",".join(
        str(shard)
        for shard in replica_union_shards(index, n_hosts, n_shards, replication)
    )


@dataclass
class FaultCluster:
    """Live replicated serving hosts plus the map that routes to them."""

    procs: list
    cluster_map: ClusterMap
    _dead: set = field(default_factory=set)

    @property
    def hosts(self) -> tuple[str, ...]:
        return self.cluster_map.hosts

    def kill(self, host: str) -> str:
        """SIGKILL one host by address — no shutdown handler runs, the
        socket just vanishes, exactly like a machine loss."""
        index = self.hosts.index(host)
        proc = self.procs[index]
        if host not in self._dead:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait()
            self._dead.add(host)
        return host

    def kill_after(self, host: str, delay_s: float) -> threading.Thread:
        """Kill ``host`` from a timer thread — the caller starts a batch
        and joins the thread after, so the kill lands mid-flight."""
        timer = threading.Timer(delay_s, self.kill, args=(host,))
        timer.start()
        return timer

    def close(self) -> None:
        terminate(
            [
                proc
                for host, proc in zip(self.hosts, self.procs)
                if host not in self._dead
            ]
        )


def spawn_replicated(
    n_hosts: int = 3,
    n_shards: int = 8,
    *,
    store_root=None,
    replication: int = 2,
    deadline_s: float = 60.0,
) -> FaultCluster:
    """``n_hosts`` live hosts with replica-union shard ownership.

    With ``store_root`` the hosts serve one shared store (and advertise
    its recorded epoch); without, each host runs an in-memory registry
    at ``n_shards``.  Host order defines replica order: host ``i`` is
    the primary of shards ``s`` with ``s % n_hosts == i`` and seconds
    its ring predecessor's, matching ``ClusterMap.replica_hosts``.
    """
    procs, hosts = [], []
    try:
        for index in range(n_hosts):
            args = ["--own-shards", replica_union_arg(index, n_hosts, n_shards, replication)]
            if store_root is not None:
                args += ["--artifacts", str(store_root)]
            else:
                args += ["--shards", str(n_shards)]
            proc, host, port = spawn_listen(*args, deadline_s=deadline_s)
            procs.append(proc)
            hosts.append(f"{host}:{port}")
    except BaseException:
        terminate(procs)
        raise
    return FaultCluster(procs, ClusterMap(tuple(hosts), n_shards))


def env_telemetry_sink() -> Optional[Callable[[dict], None]]:
    """A router ``telemetry_sink`` appending JSON lines to the file
    named by ``FAILOVER_TELEMETRY``, or ``None`` when unset."""
    path = os.environ.get("FAILOVER_TELEMETRY")
    if not path:
        return None
    lock = threading.Lock()

    def sink(event: dict) -> None:
        with lock, open(path, "a", encoding="utf-8") as stream:
            stream.write(json.dumps(event, sort_keys=True) + "\n")

    return sink


__all__ = [
    "FaultCluster",
    "env_telemetry_sink",
    "replica_union_arg",
    "replica_union_shards",
    "spawn_replicated",
]

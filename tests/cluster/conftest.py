"""Shared fixtures for the cluster layer: live ``serve --listen``
subprocesses with shard ownership, and a dead-host address factory."""

from __future__ import annotations

import socket

import pytest

from tests.serving_utils import spawn_listen, terminate


def dead_address() -> str:
    """A ``host:port`` nobody listens on (bound once, then released)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"


@pytest.fixture(scope="module")
def cluster_hosts():
    """Two in-memory serving hosts over disjoint halves of 8 shards
    (host 0 owns the even shards, host 1 the odd — the ClusterMap
    assignment for a 2-host list)."""
    procs, hosts = [], []
    try:
        for own in ("0,2,4,6", "1,3,5,7"):
            proc, host, port = spawn_listen("--own-shards", own, "--shards", "8")
            procs.append(proc)
            hosts.append(f"{host}:{port}")
        yield tuple(hosts)
    finally:
        terminate(procs)

"""Tests for canonical paths and c-changes."""

from repro.dom import parse_html
from repro.xpath import canonical_path, evaluate
from repro.xpath.canonical import c_changes, canonical_key


class TestCanonicalPath:
    def test_root_is_slash(self, imdb_doc):
        assert str(canonical_path(imdb_doc.root)) == "/"

    def test_selects_exactly_the_node(self, imdb_doc):
        for node in list(imdb_doc.root.descendants())[:40]:
            path = canonical_path(node)
            assert evaluate(path, imdb_doc.root, imdb_doc) == [node]

    def test_counts_same_tag_siblings_only(self):
        doc = parse_html("<div><a>1</a><b>x</b><a>2</a></div>")
        second_a = doc.find(tag="div").element_children()[2]
        assert "a[2]" in str(canonical_path(second_a))

    def test_text_nodes_use_text_test(self):
        doc = parse_html("<p>hello</p>")
        text = doc.find(tag="p").children[0]
        assert str(canonical_path(text)).endswith("text()[1]")

    def test_is_absolute(self, imdb_doc):
        node = imdb_doc.find(tag="h1")
        assert canonical_path(node).absolute


class TestCChanges:
    def test_no_changes(self):
        keys = [("a",), ("a",), ("a",)]
        assert c_changes(keys) == 0

    def test_single_change(self):
        assert c_changes([("a",), ("b",), ("b",)]) == 1

    def test_change_and_back_counts_twice(self):
        assert c_changes([("a",), ("b",), ("a",)]) == 2

    def test_none_gaps_skipped(self):
        assert c_changes([("a",), None, ("a",)]) == 0
        assert c_changes([("a",), None, ("b",)]) == 1

    def test_multi_target_fingerprint_is_sorted(self, imdb_doc):
        tds = [n for n in imdb_doc.root.iter_find(tag="td", class_="name")]
        key_fwd = canonical_key(tds)
        key_rev = canonical_key(list(reversed(tds)))
        assert key_fwd == key_rev

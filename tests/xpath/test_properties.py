"""Property-based tests for the XPath engine on random documents."""

import random

from hypothesis import given, settings, strategies as st

from repro.dom import E, T, document
from repro.dom.node import ElementNode
from repro.xpath import canonical_path, evaluate, parse_query
from repro.xpath.ast import Axis, NODE, Query, Step
from repro.xpath.axes import axis_candidates

TAGS = ["div", "span", "p", "ul", "li", "a"]


@st.composite
def random_tree(draw, max_depth=4):
    """A random small document."""
    def build(depth):
        tag = draw(st.sampled_from(TAGS))
        attrs = {}
        if draw(st.booleans()):
            attrs["class"] = draw(st.sampled_from(["a", "b", "c"]))
        node = ElementNode(tag, attrs)
        if depth < max_depth:
            for _ in range(draw(st.integers(0, 3))):
                if draw(st.integers(0, 4)) == 0:
                    node.append_child(T(draw(st.sampled_from(["x", "hello", "42"]))))
                else:
                    node.append_child(build(depth + 1))
        return node

    return document(E("html", build(0)))


@settings(max_examples=40, deadline=None)
@given(random_tree())
def test_canonical_path_selects_exactly_its_node(doc):
    for node in doc.root.descendants():
        assert evaluate(canonical_path(node), doc.root, doc) == [node]


@settings(max_examples=40, deadline=None)
@given(random_tree())
def test_results_are_sorted_and_unique(doc):
    query = parse_query("descendant::*/child::node()")
    out = evaluate(query, doc.root, doc)
    keys = [doc.order_key(n) for n in out]
    assert keys == sorted(keys)
    assert len(set(keys)) == len(keys)


@settings(max_examples=40, deadline=None)
@given(random_tree(), st.sampled_from(list(Axis)))
def test_axis_candidates_well_formed(doc, axis):
    nodes = [doc.root] + list(doc.root.descendants())
    for node in nodes[:10]:
        candidates = axis_candidates(node, axis, doc)
        assert len({id(c) for c in candidates}) == len(candidates)


@settings(max_examples=40, deadline=None)
@given(random_tree())
def test_descendant_equals_child_closure(doc):
    """descendant::node() == fixpoint of child::node()."""
    via_descendant = evaluate(parse_query("descendant::node()"), doc.root, doc)
    collected = []
    frontier = [doc.root]
    while frontier:
        nxt = []
        for node in frontier:
            for child in axis_candidates(node, Axis.CHILD, doc):
                collected.append(child)
                nxt.append(child)
        frontier = nxt
    assert {id(n) for n in via_descendant} == {id(n) for n in collected}


@settings(max_examples=40, deadline=None)
@given(random_tree())
def test_sibling_axes_are_inverse(doc):
    """y in following-sibling(x)  iff  x in preceding-sibling(y)."""
    nodes = list(doc.root.descendants())[:12]
    for x in nodes:
        for y in axis_candidates(x, Axis.FOLLOWING_SIBLING, doc):
            back = axis_candidates(y, Axis.PRECEDING_SIBLING, doc)
            assert any(b is x for b in back)


@settings(max_examples=30, deadline=None)
@given(random_tree())
def test_step_concatenation_associative(doc):
    """(a/b)/c == a/(b/c) over evaluation."""
    a = Step(Axis.DESCENDANT, NODE)
    b = Step(Axis.PARENT, NODE)
    c = Step(Axis.CHILD, NODE)
    q_left = Query((a,)).concat(Query((b, c)))
    q_right = Query((a, b)).concat(Query((c,)))
    assert q_left == q_right
    left = evaluate(q_left, doc.root, doc)
    right = evaluate(q_right, doc.root, doc)
    assert [id(n) for n in left] == [id(n) for n in right]

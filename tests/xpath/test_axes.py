"""Tests for axis navigation order and content."""

import pytest

from repro.dom import parse_html
from repro.xpath.ast import Axis
from repro.xpath.axes import axis_candidates


@pytest.fixture
def doc():
    return parse_html(
        "<html><body>"
        "<div id='a'><p id='p1'>1</p><p id='p2'>2</p><p id='p3'>3</p></div>"
        "<div id='b'><span id='s'>x</span></div>"
        "</body></html>"
    )


class TestForwardAxes:
    def test_child_in_document_order(self, doc):
        div = doc.find(id="a")
        tags = [c.attrs.get("id") for c in axis_candidates(div, Axis.CHILD, doc)]
        assert tags == ["p1", "p2", "p3"]

    def test_descendant_preorder(self, doc):
        body = doc.find(tag="body")
        ids = [
            n.attrs.get("id")
            for n in axis_candidates(body, Axis.DESCENDANT, doc)
            if hasattr(n, "attrs") and n.attrs.get("id")
        ]
        assert ids == ["a", "p1", "p2", "p3", "b", "s"]

    def test_following_sibling_order(self, doc):
        p1 = doc.find(id="p1")
        ids = [n.attrs.get("id") for n in axis_candidates(p1, Axis.FOLLOWING_SIBLING, doc)]
        assert ids == ["p2", "p3"]


class TestReverseAxes:
    def test_ancestor_nearest_first(self, doc):
        p1 = doc.find(id="p1")
        tags = [n.tag for n in axis_candidates(p1, Axis.ANCESTOR, doc)]
        assert tags == ["div", "body", "html", "#document"]

    def test_preceding_sibling_nearest_first(self, doc):
        p3 = doc.find(id="p3")
        ids = [n.attrs.get("id") for n in axis_candidates(p3, Axis.PRECEDING_SIBLING, doc)]
        assert ids == ["p2", "p1"]

    def test_parent_single(self, doc):
        p1 = doc.find(id="p1")
        assert [n.attrs.get("id") for n in axis_candidates(p1, Axis.PARENT, doc)] == ["a"]


class TestAttributeAndSelf:
    def test_attribute_nodes(self, doc):
        div = doc.find(id="a")
        attrs = axis_candidates(div, Axis.ATTRIBUTE, doc)
        assert [a.name for a in attrs] == ["id"]

    def test_self(self, doc):
        p1 = doc.find(id="p1")
        assert axis_candidates(p1, Axis.SELF, doc) == [p1]

    def test_attribute_node_has_no_siblings(self, doc):
        div = doc.find(id="a")
        attr = div.attribute_node("id")
        assert axis_candidates(attr, Axis.FOLLOWING_SIBLING, doc) == []


class TestGlobalAxes:
    def test_following_and_preceding_partition(self, doc):
        """following(x) ∪ preceding(x) ∪ ancestors(x) ∪ descendants(x) ∪ {x}
        covers exactly all non-attribute nodes."""
        p2 = doc.find(id="p2")
        following = {id(n) for n in axis_candidates(p2, Axis.FOLLOWING, doc)}
        preceding = {id(n) for n in axis_candidates(p2, Axis.PRECEDING, doc)}
        ancestors = {id(n) for n in axis_candidates(p2, Axis.ANCESTOR, doc)}
        descendants = {id(n) for n in axis_candidates(p2, Axis.DESCENDANT, doc)}
        everything = {id(n) for n in doc.all_nodes()}
        union = following | preceding | ancestors | descendants | {id(p2)}
        assert union == everything
        assert not (following & preceding)


class TestAxisMeta:
    def test_transitive_mapping(self):
        assert Axis.CHILD.transitive is Axis.DESCENDANT
        assert Axis.PARENT.transitive is Axis.ANCESTOR
        assert Axis.FOLLOWING_SIBLING.transitive is Axis.FOLLOWING_SIBLING

    def test_reverse_mapping(self):
        assert Axis.CHILD.reverse is Axis.PARENT
        assert Axis.DESCENDANT.reverse is Axis.ANCESTOR
        assert Axis.FOLLOWING_SIBLING.reverse is Axis.PRECEDING_SIBLING

    def test_is_reverse_flags(self):
        assert Axis.ANCESTOR.is_reverse
        assert not Axis.DESCENDANT.is_reverse

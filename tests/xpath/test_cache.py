"""Tests for the memoized evaluator."""

from repro.dom import parse_html
from repro.xpath import parse_query
from repro.xpath.cache import CachedEvaluator
from repro.xpath.evaluator import evaluate


class TestCachedEvaluator:
    def test_matches_uncached_evaluation(self, imdb_doc):
        evaluator = CachedEvaluator(imdb_doc)
        for text in (
            "descendant::div",
            'descendant::span[@itemprop="name"]',
            "descendant::tr/following-sibling::tr",
        ):
            query = parse_query(text)
            cached = evaluator.evaluate(query, imdb_doc.root)
            direct = evaluate(query, imdb_doc.root, imdb_doc)
            assert list(cached) == direct

    def test_cache_hits_counted(self, imdb_doc):
        evaluator = CachedEvaluator(imdb_doc)
        query = parse_query("descendant::div")
        evaluator.evaluate(query, imdb_doc.root)
        evaluator.evaluate(query, imdb_doc.root)
        assert evaluator.hits == 1
        assert evaluator.misses == 1

    def test_concat_equals_full_query(self, imdb_doc):
        evaluator = CachedEvaluator(imdb_doc)
        head = parse_query('descendant::div[@id="main"]')
        tail = parse_query("descendant::td")
        head_matches = evaluator.evaluate(head, imdb_doc.root)
        combined = evaluator.evaluate_concat(head_matches, tail)
        full = evaluate(head.concat(tail), imdb_doc.root, imdb_doc)
        assert combined == full

    def test_concat_ids_equals_concat(self, imdb_doc):
        evaluator = CachedEvaluator(imdb_doc)
        head = parse_query("descendant::div")
        tail = parse_query("child::h4")
        head_matches = evaluator.evaluate(head, imdb_doc.root)
        nodes = evaluator.evaluate_concat(head_matches, tail)
        ids = evaluator.evaluate_concat_ids(head_matches, tail)
        assert ids == frozenset(imdb_doc.node_id(n) for n in nodes)

    def test_empty_tail_returns_heads(self, imdb_doc):
        evaluator = CachedEvaluator(imdb_doc)
        head_matches = evaluator.evaluate(parse_query("descendant::h4"), imdb_doc.root)
        from repro.xpath.ast import EMPTY_QUERY

        assert evaluator.evaluate_concat(head_matches, EMPTY_QUERY) == list(head_matches)


class TestMemoizedAst:
    def test_hash_stable_and_equal_for_equal_queries(self):
        a = parse_query('descendant::div[@id="x"]/child::span')
        b = parse_query('descendant::div[@id="x"]/child::span')
        assert a == b
        assert hash(a) == hash(b)

    def test_str_memo_consistent(self):
        query = parse_query("descendant::li[last()-2]")
        assert str(query) == str(query) == "descendant::li[last()-2]"

    def test_unequal_queries_differ(self):
        a = parse_query("descendant::div")
        b = parse_query("descendant::div[1]")
        assert a != b

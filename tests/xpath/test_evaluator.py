"""Tests for dsXPath evaluation semantics."""

import pytest

from repro.dom import E, T, document, parse_html
from repro.xpath import evaluate, parse_query


def q(text):
    return parse_query(text)


def names(nodes):
    return [n.normalized_text() for n in nodes]


class TestAxes:
    def test_descendant(self, imdb_doc):
        spans = evaluate(q("descendant::span"), imdb_doc.root, imdb_doc)
        assert len(spans) == 3

    def test_child_vs_descendant(self, imdb_doc):
        main = imdb_doc.find(id="main")
        assert evaluate(q("child::table"), main, imdb_doc) != []
        assert evaluate(q("child::td"), main, imdb_doc) == []
        assert evaluate(q("descendant::td"), main, imdb_doc) != []

    def test_parent(self, imdb_doc):
        h1 = imdb_doc.find(tag="h1")
        assert evaluate(q("parent::div"), h1, imdb_doc) == [imdb_doc.find(id="main")]

    def test_ancestor_nearest_first_positional(self, imdb_doc):
        span = imdb_doc.find(tag="span")
        nearest = evaluate(q("ancestor::*[1]"), span, imdb_doc)
        assert nearest[0].tag == "a"

    def test_following_sibling(self, imdb_doc):
        head = imdb_doc.find(tag="tr", class_="head")
        rows = evaluate(q("following-sibling::tr"), head, imdb_doc)
        assert len(rows) == 3

    def test_preceding_sibling_reverse_order(self):
        doc = parse_html("<ul><li>a</li><li>b</li><li>c</li></ul>")
        last = evaluate(q("descendant::li[last()]"), doc.root, doc)[0]
        prev = evaluate(q("preceding-sibling::li[1]"), last, doc)
        assert names(prev) == ["b"]

    def test_attribute_axis(self, imdb_doc):
        attrs = evaluate(q("descendant::input/@name"), imdb_doc.root, imdb_doc)
        assert [a.value for a in attrs] == ["q"]

    def test_attribute_axis_wildcard(self):
        doc = parse_html('<div id="i" class="c">x</div>')
        attrs = evaluate(q("descendant::div/attribute::*"), doc.root, doc)
        assert sorted(a.name for a in attrs) == ["class", "id"]

    def test_following_axis_excludes_descendants(self):
        doc = parse_html("<div><a>x</a><span><b>y</b></span></div><p>z</p>")
        a = doc.find(tag="a")
        following = evaluate(q("following::*"), a, doc)
        assert [n.tag for n in following] == ["span", "b", "p"]

    def test_preceding_axis_excludes_ancestors(self):
        doc = parse_html("<div><a>x</a><span>y</span></div><p>z</p>")
        p = doc.find(tag="p")
        preceding = evaluate(q("preceding::*"), p, doc)
        assert {n.tag for n in preceding} == {"div", "a", "span"}


class TestNodeTests:
    def test_star_matches_elements_only(self):
        doc = parse_html("<div>text<span>x</span></div>")
        out = evaluate(q("descendant::*"), doc.root, doc)
        assert {n.tag for n in out} == {"div", "span"}

    def test_node_matches_text_too(self):
        doc = parse_html("<div>text<span>x</span></div>")
        div = doc.find(tag="div")
        out = evaluate(q("child::node()"), div, doc)
        assert len(out) == 2

    def test_text_nodetest(self):
        doc = parse_html("<div>hello<span>x</span></div>")
        div = doc.find(tag="div")
        out = evaluate(q("child::text()"), div, doc)
        assert [n.text for n in out] == ["hello"]

    def test_star_does_not_match_document_node(self, imdb_doc):
        html = imdb_doc.root_element
        assert evaluate(q("ancestor::*"), html, imdb_doc) == []
        assert evaluate(q("ancestor::node()"), html, imdb_doc) == [imdb_doc.root]


class TestPredicates:
    def test_positional_counts_after_nodetest(self):
        doc = parse_html("<div><a>1</a><b>x</b><a>2</a></div>")
        out = evaluate(q("descendant::a[2]"), doc.root, doc)
        assert names(out) == ["2"]

    def test_positional_out_of_range(self, imdb_doc):
        assert evaluate(q("descendant::table[5]"), imdb_doc.root, imdb_doc) == []

    def test_last_minus(self):
        doc = parse_html("<ul><li>a</li><li>b</li><li>c</li></ul>")
        out = evaluate(q("descendant::li[last()-1]"), doc.root, doc)
        assert names(out) == ["b"]

    def test_successive_predicates_renumber(self):
        doc = parse_html(
            '<div><a class="x">1</a><a>2</a><a class="x">3</a></div>'
        )
        out = evaluate(q('descendant::a[@class="x"][2]'), doc.root, doc)
        assert names(out) == ["3"]

    def test_positional_on_reverse_axis(self):
        doc = parse_html("<div><section><p>deep</p></section></div>")
        p = doc.find(tag="p")
        out = evaluate(q("ancestor::*[2]"), p, doc)
        assert out[0].tag == "div"

    def test_attribute_existence(self, imdb_doc):
        out = evaluate(q("descendant::div[@id]"), imdb_doc.root, imdb_doc)
        assert [n.attrs["id"] for n in out] == ["main"]

    def test_equals_on_attribute(self, imdb_doc):
        out = evaluate(q('descendant::div[@class="promo"]'), imdb_doc.root, imdb_doc)
        assert len(out) == 2

    def test_contains_on_attribute(self, imdb_doc):
        out = evaluate(q('descendant::td[contains(@class,"nam")]'), imdb_doc.root, imdb_doc)
        assert len(out) == 3

    def test_starts_with_on_text(self, imdb_doc):
        out = evaluate(
            q('descendant::div[starts-with(.,"Director:")]'), imdb_doc.root, imdb_doc
        )
        assert len(out) == 1

    def test_ends_with_on_text(self):
        doc = parse_html("<div><p>hello world</p><p>other</p></div>")
        out = evaluate(q('descendant::p[ends-with(.,"world")]'), doc.root, doc)
        assert names(out) == ["hello world"]

    def test_text_value_is_normalized(self):
        doc = parse_html("<div><h4>Director:   </h4><span> Martin </span></div>")
        out = evaluate(
            q('descendant::div[starts-with(.,"Director: Martin")]'), doc.root, doc
        )
        assert len(out) == 1

    def test_missing_attribute_never_matches(self):
        doc = parse_html("<div><p>x</p></div>")
        assert evaluate(q('descendant::p[contains(@class,"")]'), doc.root, doc) == []

    def test_nested_relative_predicate(self, imdb_doc):
        out = evaluate(
            q('descendant::span[ancestor::div[1][@class="txt-block"]]'),
            imdb_doc.root,
            imdb_doc,
        )
        # the two writers; the director span's nearest div ancestor is txt-block too
        assert len(out) == 3


class TestFullQueries:
    def test_paper_director_wrapper(self, imdb_doc):
        out = evaluate(
            q('descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"]'),
            imdb_doc.root,
            imdb_doc,
        )
        assert names(out) == ["Martin Scorsese"]

    def test_sibling_list_wrapper(self, imdb_doc):
        out = evaluate(
            q('descendant::tr[contains(.,"Cast")]/following-sibling::tr'),
            imdb_doc.root,
            imdb_doc,
        )
        assert len(out) == 3

    def test_results_in_document_order(self, imdb_doc):
        out = evaluate(q("descendant::div"), imdb_doc.root, imdb_doc)
        keys = [imdb_doc.order_key(n) for n in out]
        assert keys == sorted(keys)

    def test_no_duplicates_from_overlapping_contexts(self, imdb_doc):
        out = evaluate(q("descendant::div/descendant::td"), imdb_doc.root, imdb_doc)
        assert len(out) == len({id(n) for n in out}) == 4

    def test_empty_query_selects_context(self, imdb_doc):
        h1 = imdb_doc.find(tag="h1")
        assert evaluate(q(""), h1, imdb_doc) == [h1]

    def test_absolute_query_ignores_context(self, imdb_doc):
        h1 = imdb_doc.find(tag="h1")
        out = evaluate(q("/html[1]"), h1, imdb_doc)
        assert out == [imdb_doc.root_element]

"""Tests for the dsXPath parser."""

import pytest

from repro.xpath import parse_query
from repro.xpath.ast import (
    AttrSubject,
    AttributePredicate,
    Axis,
    PositionalPredicate,
    RelativePredicate,
    StringPredicate,
    TextSubject,
)
from repro.xpath.errors import XPathParseError


class TestSteps:
    def test_single_step(self):
        q = parse_query("descendant::div")
        assert len(q.steps) == 1
        assert q.steps[0].axis is Axis.DESCENDANT
        assert q.steps[0].nodetest.name == "div"

    def test_multiple_steps(self):
        q = parse_query("descendant::div/child::span")
        assert [s.axis for s in q.steps] == [Axis.DESCENDANT, Axis.CHILD]

    def test_all_axes(self):
        for axis in Axis:
            q = parse_query(f"{axis.value}::node()")
            assert q.steps[0].axis is axis

    def test_nodetests(self):
        assert parse_query("child::*").steps[0].nodetest.kind == "any"
        assert parse_query("child::node()").steps[0].nodetest.kind == "node"
        assert parse_query("child::text()").steps[0].nodetest.kind == "text"
        assert parse_query("child::h3").steps[0].nodetest.name == "h3"

    def test_abbreviated_child_axis(self):
        q = parse_query("div/span")
        assert all(s.axis is Axis.CHILD for s in q.steps)

    def test_attribute_abbreviation_step(self):
        q = parse_query("descendant::a/@href")
        assert q.steps[1].axis is Axis.ATTRIBUTE
        assert q.steps[1].nodetest.name == "href"

    def test_absolute_query(self):
        q = parse_query("/html[1]/body[1]")
        assert q.absolute
        assert len(q.steps) == 2

    def test_empty_query(self):
        assert parse_query("").is_empty
        assert parse_query("ε").is_empty


class TestPredicates:
    def test_positional_index(self):
        q = parse_query("descendant::div[3]")
        pred = q.steps[0].predicates[0]
        assert isinstance(pred, PositionalPredicate)
        assert pred.index == 3

    def test_positional_last(self):
        pred = parse_query("descendant::div[last()]").steps[0].predicates[0]
        assert pred.from_last == 0

    def test_positional_last_minus(self):
        pred = parse_query("descendant::div[last()-2]").steps[0].predicates[0]
        assert pred.from_last == 2

    def test_position_function(self):
        pred = parse_query("descendant::div[position()=4]").steps[0].predicates[0]
        assert pred.index == 4

    def test_attribute_existence(self):
        pred = parse_query("descendant::div[@id]").steps[0].predicates[0]
        assert isinstance(pred, AttributePredicate)
        assert pred.name == "id"

    def test_attribute_equality_sugar(self):
        pred = parse_query('descendant::div[@id="main"]').steps[0].predicates[0]
        assert isinstance(pred, StringPredicate)
        assert pred.function == "equals"
        assert pred.subject == AttrSubject("id")
        assert pred.value == "main"

    def test_contains_on_attribute(self):
        pred = parse_query('descendant::img[contains(@class,"adv")]').steps[0].predicates[0]
        assert pred.function == "contains"
        assert pred.subject == AttrSubject("class")

    def test_starts_with_on_text(self):
        pred = parse_query('descendant::div[starts-with(.,"Director:")]').steps[0].predicates[0]
        assert pred.function == "starts-with"
        assert isinstance(pred.subject, TextSubject)

    def test_text_equality_dot_form(self):
        pred = parse_query('descendant::h4[.="Trending:"]').steps[0].predicates[0]
        assert pred.function == "equals"
        assert isinstance(pred.subject, TextSubject)

    def test_normalize_space_subject(self):
        pred = parse_query(
            'descendant::div[starts-with(normalize-space(.),"Top")]'
        ).steps[0].predicates[0]
        assert isinstance(pred.subject, TextSubject)

    def test_normalize_space_equality(self):
        pred = parse_query('descendant::div[normalize-space(.)="x"]').steps[0].predicates[0]
        assert pred.function == "equals"

    def test_multiple_predicates(self):
        q = parse_query('descendant::img[@class="adv"][1]')
        assert len(q.steps[0].predicates) == 2

    def test_nested_relative_predicate(self):
        q = parse_query('descendant::img[ancestor::div[1][@class="contentSmLeft"]]')
        pred = q.steps[0].predicates[0]
        assert isinstance(pred, RelativePredicate)
        inner = pred.query
        assert inner.steps[0].axis is Axis.ANCESTOR
        assert len(inner.steps[0].predicates) == 2

    def test_attribute_axis_in_predicate(self):
        pred = parse_query('descendant::div[attribute::id]').steps[0].predicates[0]
        assert isinstance(pred, AttributePredicate)


class TestErrors:
    def test_unknown_axis(self):
        with pytest.raises(XPathParseError):
            parse_query("sideways::div")

    def test_unclosed_predicate(self):
        with pytest.raises(XPathParseError):
            parse_query("descendant::div[1")

    def test_garbage(self):
        with pytest.raises(XPathParseError):
            parse_query("descendant::div]]")

    def test_bad_character(self):
        with pytest.raises(XPathParseError):
            parse_query("descendant::div[§]")


class TestRoundTrip:
    QUERIES = [
        'descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"]',
        'descendant::img[@class="adv"][1]',
        "descendant::input[@name]",
        'descendant::tr[contains(.,"News")]/following-sibling::tr',
        "descendant::div[last()-2]/child::h3",
        "descendant::p/following-sibling::node()/descendant::li",
        'descendant::input[@type="text"][last()]',
        "ancestor::div[1]",
        "descendant::a/@href",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_str_then_reparse_is_identity(self, text):
        query = parse_query(text)
        assert parse_query(str(query)) == query

"""Property-based canonical-text round trips: ``parse(str(q)) ≡ q``.

Wrapper artifacts persist queries as canonical dsXPath text
(:mod:`repro.runtime.artifact`), so the printer/parser pair must be
lossless over everything induction can emit.  Queries are drawn from
the induction step-pattern space (the axes, node tests, and predicate
shapes of :mod:`repro.induction.step_pattern` /
:mod:`repro.induction.node_pattern`): base + transitive axes, a
terminal attribute step, positional / attribute-existence / string
predicates over ``normalize-space(.)`` or an attribute.

String constants exclude the backslash, matching the synthetic corpus'
data space (the printer escapes only quotes, so a value ending in a
backslash would swallow its closing quote; induction never sees one).

Also covered: canonical *paths* — for any node of a corpus document,
evaluating ``parse(str(canonical_path(node)))`` selects exactly that
node again, the invariant artifact sample restoration stands on.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evolution import SyntheticArchive
from repro.sites.verticals import VERTICAL_FACTORIES
from repro.xpath.ast import (
    ANY,
    NODE,
    TEXT,
    AttrSubject,
    AttributePredicate,
    Axis,
    PositionalPredicate,
    Query,
    Step,
    StringPredicate,
    TextSubject,
    name_test,
)
from repro.xpath.compile import evaluate_compiled
from repro.xpath.canonical import canonical_path
from repro.xpath.parser import parse_query

# -- strategies -------------------------------------------------------------

_NAMES = st.from_regex(r"[A-Za-z_][A-Za-z0-9_\-]{0,11}", fullmatch=True)

#: Values as induction draws them: document words / full text values /
#: attribute values.  Printable, no backslash (see module docstring).
_VALUE_ALPHABET = (
    string.ascii_letters + string.digits + " .,:;!?'\"()-_/@#%&*+=<>[]{}|~^$"
)
_VALUES = st.text(alphabet=_VALUE_ALPHABET, min_size=0, max_size=24)

_NODETESTS = st.one_of(
    st.just(ANY),
    st.just(NODE),
    st.just(TEXT),
    _NAMES.map(name_test),
)

_POSITIONAL = st.one_of(
    st.integers(min_value=1, max_value=40).map(lambda n: PositionalPredicate(index=n)),
    st.integers(min_value=0, max_value=6).map(
        lambda n: PositionalPredicate(from_last=n)
    ),
)

_SUBJECTS = st.one_of(st.just(TextSubject()), _NAMES.map(AttrSubject))

_STRING_PREDICATES = st.builds(
    StringPredicate,
    function=st.sampled_from(("equals", "contains", "starts-with", "ends-with")),
    subject=_SUBJECTS,
    value=_VALUES,
)

_PREDICATES = st.one_of(_POSITIONAL, _NAMES.map(AttributePredicate), _STRING_PREDICATES)

#: The axes induction steps use (BASE_AXES plus their transitive forms).
_STEP_AXES = st.sampled_from(
    (
        Axis.CHILD,
        Axis.DESCENDANT,
        Axis.PARENT,
        Axis.ANCESTOR,
        Axis.FOLLOWING_SIBLING,
        Axis.PRECEDING_SIBLING,
    )
)

_STEPS = st.builds(
    Step,
    axis=_STEP_AXES,
    nodetest=_NODETESTS,
    predicates=st.lists(_PREDICATES, max_size=3).map(tuple),
)

_ATTR_STEPS = st.builds(
    Step,
    axis=st.just(Axis.ATTRIBUTE),
    nodetest=st.one_of(st.just(ANY), _NAMES.map(name_test)),
    predicates=st.just(()),
)


@st.composite
def induction_queries(draw) -> Query:
    """Relative queries shaped like induction output: navigational steps,
    optionally ending in an attribute step."""
    steps = draw(st.lists(_STEPS, min_size=0, max_size=4))
    if draw(st.booleans()):
        steps.append(draw(_ATTR_STEPS))
    return Query(tuple(steps))


# -- AST round trip ---------------------------------------------------------


class TestAstRoundTrip:
    @settings(max_examples=300, derandomize=True, deadline=None)
    @given(query=induction_queries())
    def test_parse_canonical_text_is_identity(self, query):
        text = str(query)
        reparsed = parse_query(text)
        assert reparsed == query
        assert hash(reparsed) == hash(query)
        assert str(reparsed) == text  # printing is a fixed point

    def test_empty_query_round_trips(self):
        assert parse_query(str(Query(()))) == Query(())

    def test_document_node_query_round_trips(self):
        root = Query((), absolute=True)
        assert parse_query(str(root)) == root


# -- evaluation equality on corpus documents --------------------------------


@pytest.fixture(scope="module")
def corpus_doc():
    spec = VERTICAL_FACTORIES["movies"](0)
    return SyntheticArchive(spec, n_snapshots=1).snapshot(0)


class TestEvaluationEquality:
    @settings(max_examples=60, derandomize=True, deadline=None)
    @given(query=induction_queries())
    def test_reparsed_query_selects_identical_nodes(self, query, corpus_doc):
        doc = corpus_doc
        original = evaluate_compiled(query, doc.root, doc)
        reparsed = evaluate_compiled(parse_query(str(query)), doc.root, doc)
        assert [id(n) for n in original] == [id(n) for n in reparsed]


class TestCanonicalPathRoundTrip:
    @settings(max_examples=120, derandomize=True, deadline=None)
    @given(pick=st.integers(min_value=0, max_value=10**9))
    def test_canonical_path_relocates_exactly_the_node(self, pick, corpus_doc):
        doc = corpus_doc
        nodes = doc.index.nodes
        node = nodes[1 + pick % (len(nodes) - 1)]  # skip the #document node
        path = canonical_path(node)
        matches = evaluate_compiled(parse_query(str(path)), doc.root, doc)
        assert len(matches) == 1
        assert matches[0] is node

    def test_attribute_node_paths_relocate(self, corpus_doc):
        """Attribute nodes canonicalize with a trailing attribute step and
        re-locate exactly (wrappers may extract attribute values)."""
        doc = corpus_doc
        checked = 0
        for element in doc.root.descendant_elements():
            for attr in element.attribute_nodes():
                path = canonical_path(attr)
                assert str(path).rpartition("/")[2] == f"attribute::{attr.name}"
                matches = evaluate_compiled(parse_query(str(path)), doc.root, doc)
                assert matches == [attr]
                checked += 1
            if checked >= 25:
                return
        assert checked

    def test_every_target_node_relocates(self, corpus_doc):
        doc = corpus_doc
        targets = [n for n in doc.all_nodes() if n.meta.get("role")]
        assert targets
        for node in targets:
            matches = evaluate_compiled(
                parse_query(str(canonical_path(node))), doc.root, doc
            )
            assert matches == [node]

"""Tests for dsXPath fragment membership (directionality, plausibility)."""

from repro.dom import parse_html
from repro.xpath import parse_query
from repro.xpath.fragment import (
    axes_signature,
    is_ds_query,
    is_one_directional,
    is_plausible,
    is_two_directional,
)
from repro.xpath.ast import Axis


def q(text):
    return parse_query(text)


class TestAxesSignature:
    def test_trailing_attribute_dropped(self):
        sig = axes_signature(q("descendant::a/@href"))
        assert sig == (Axis.DESCENDANT,)

    def test_plain(self):
        sig = axes_signature(q("descendant::div/child::span"))
        assert sig == (Axis.DESCENDANT, Axis.CHILD)


class TestOneDirectional:
    def test_downward(self):
        assert is_one_directional(q("descendant::div/child::span"))

    def test_upward(self):
        assert is_one_directional(q("parent::div/ancestor::body"))

    def test_down_with_sideways(self):
        assert is_one_directional(
            q("descendant::div/following-sibling::node()/descendant::li")
        )

    def test_mixed_direction_rejected(self):
        assert not is_one_directional(q("descendant::div/parent::body"))

    def test_mixed_sideways_run_rejected(self):
        assert not is_one_directional(
            q("descendant::div/following-sibling::a/preceding-sibling::b")
        )

    def test_two_separate_sideways_runs_ok(self):
        assert is_one_directional(
            q("descendant::a/following-sibling::b/descendant::c/preceding-sibling::d")
        )

    def test_leading_sideways_extension(self):
        assert is_one_directional(q("following-sibling::tr"))

    def test_following_axis_not_in_fragment(self):
        assert not is_one_directional(q("descendant::p/following::ul"))


class TestTwoDirectional:
    def test_up_then_down(self):
        assert is_two_directional(q("ancestor::div[1]/descendant::span"))

    def test_one_directional_included(self):
        assert is_two_directional(q("descendant::div"))

    def test_three_direction_changes_rejected(self):
        assert not is_two_directional(
            q("ancestor::div/descendant::span/ancestor::p/descendant::b")
        )


class TestDsQuery:
    def test_paper_wrapper_is_ds(self):
        assert is_ds_query(
            q('descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"]')
        )

    def test_nested_predicate_not_ds(self):
        assert not is_ds_query(q('descendant::img[ancestor::div[1][@class="x"]]'))

    def test_following_axis_not_ds(self):
        assert not is_ds_query(q('descendant::p[contains(.,"Hit")]/following::ul[1]'))

    def test_absolute_not_ds(self):
        assert not is_ds_query(q("/html[1]/body[1]"))

    def test_attribute_axis_only_terminal(self):
        assert is_ds_query(q("descendant::a/@href"))
        assert not is_ds_query(q("@href/parent::a"))


class TestPlausibility:
    def test_string_must_occur_in_document(self):
        doc = parse_html("<div class='content'><p>Director: John</p></div>")
        assert is_plausible(q('descendant::p[starts-with(.,"Director:")]'), [doc])
        assert not is_plausible(q('descendant::p[starts-with(.,"Producer:")]'), [doc])

    def test_attribute_values_count(self):
        doc = parse_html("<div class='content'>x</div>")
        assert is_plausible(q('descendant::div[@class="content"]'), [doc])

    def test_integer_bounded_by_node_count(self):
        doc = parse_html("<div><p>x</p></div>")
        assert is_plausible(q("descendant::p[2]"), [doc])
        assert not is_plausible(q("descendant::p[999]"), [doc])

    def test_empty_doc_sequence_trivially_plausible(self):
        assert is_plausible(q("descendant::div[1]"), [])

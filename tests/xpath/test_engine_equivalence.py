"""Differential tests: compiled engine ≡ reference evaluator.

Random documents × random dsXPath queries (including the evaluator-only
``following``/``preceding`` axes, positional predicates, and nested
relative predicates) are evaluated by both engines; results must agree
node-for-node in document order.  The suite sweeps well over 1000
(document, query) pairs deterministically.

The ``following``/``preceding`` axes are additionally checked against
naive pure-tree implementations, since the reference evaluator itself
runs on the rewritten interval-arithmetic axes.
"""

from __future__ import annotations

import random

import pytest

from repro.dom.builder import E, T, document
from repro.dom.node import Document, ElementNode, Node, TextNode
from repro.xpath.ast import (
    ANY,
    AttrSubject,
    AttributePredicate,
    Axis,
    NODE,
    NodeTest,
    PositionalPredicate,
    Query,
    RelativePredicate,
    Step,
    StringPredicate,
    TEXT,
    TextSubject,
    name_test,
)
from repro.xpath.axes import axis_candidates
from repro.xpath.compile import compile_query, evaluate_compiled
from repro.xpath.compile import evaluate_many as evaluate_many_compiled
from repro.xpath.evaluator import evaluate, evaluate_many

TAGS = ["div", "span", "p", "a", "ul", "li", "td", "h2"]
CLASSES = ["row", "item", "name", "hd", "txt-block"]
WORDS = ["alpha", "beta", "Director:", "42", "x"]


def random_doc(rng: random.Random, depth: int = 5, breadth: int = 3) -> Document:
    def build(level: int) -> ElementNode:
        attrs = {}
        if rng.random() < 0.6:
            attrs["class"] = rng.choice(CLASSES)
        if rng.random() < 0.2:
            attrs["id"] = f"id{rng.randrange(40)}"
        node = ElementNode(rng.choice(TAGS), attrs)
        if level < depth:
            for _ in range(rng.randrange(breadth + 1)):
                if rng.random() < 0.3:
                    node.append_child(TextNode(rng.choice(WORDS)))
                else:
                    node.append_child(build(level + 1))
        return node

    body = E("body")
    for _ in range(3):
        body.append_child(build(0))
    return document(E("html", body))


def random_nodetest(rng: random.Random) -> NodeTest:
    roll = rng.random()
    if roll < 0.5:
        return name_test(rng.choice(TAGS))
    if roll < 0.7:
        return ANY
    if roll < 0.85:
        return NODE
    return TEXT


def random_predicate(rng: random.Random, allow_relative: bool = True):
    roll = rng.random()
    if roll < 0.3:
        if rng.random() < 0.5:
            return PositionalPredicate(index=rng.randrange(1, 5))
        return PositionalPredicate(from_last=rng.randrange(0, 3))
    if roll < 0.5:
        return AttributePredicate(rng.choice(["class", "id", "missing"]))
    if roll < 0.85:
        subject = TextSubject() if rng.random() < 0.5 else AttrSubject(rng.choice(["class", "id"]))
        function = rng.choice(["equals", "contains", "starts-with", "ends-with"])
        value = rng.choice(CLASSES + WORDS)
        return StringPredicate(function, subject, value)
    if allow_relative:
        inner = random_query(rng, max_steps=1, allow_relative=False)
        if inner.steps:
            return RelativePredicate(inner)
    return AttributePredicate("class")


def random_step(rng: random.Random, allow_relative: bool = True) -> Step:
    axis = rng.choice(list(Axis))
    if axis is Axis.ATTRIBUTE and rng.random() < 0.7:
        nodetest = name_test(rng.choice(["class", "id", "missing"]))
    else:
        nodetest = random_nodetest(rng)
    predicates = tuple(
        random_predicate(rng, allow_relative)
        for _ in range(rng.choices([0, 1, 2], weights=[5, 3, 1])[0])
    )
    return Step(axis, nodetest, predicates)


def random_query(rng: random.Random, max_steps: int = 4, allow_relative: bool = True) -> Query:
    steps = tuple(
        random_step(rng, allow_relative) for _ in range(rng.randrange(1, max_steps + 1))
    )
    return Query(steps, absolute=rng.random() < 0.3)


def ids(nodes: list[Node]) -> list[int]:
    return [id(n) for n in nodes]


class TestCompiledEquivalence:
    @pytest.mark.parametrize("doc_seed", range(25))
    def test_random_docs_random_queries(self, doc_seed):
        """25 docs × 25 queries × several contexts ≥ 1500 pairs overall."""
        rng = random.Random(1000 + doc_seed)
        doc = random_doc(rng)
        all_nodes = list(doc.all_nodes())
        contexts = [doc.root] + rng.sample(all_nodes, min(4, len(all_nodes)))
        for _ in range(25):
            query = random_query(rng)
            for context in contexts:
                reference = evaluate(query, context, doc)
                compiled = evaluate_compiled(query, context, doc)
                assert ids(compiled) == ids(reference), (
                    f"engines disagree on {query} from {context!r}"
                )

    @pytest.mark.parametrize("seed", range(8))
    def test_following_preceding_and_positional(self, seed):
        """Focused sweep over the extension axes and positional forms."""
        rng = random.Random(7000 + seed)
        doc = random_doc(rng)
        all_nodes = list(doc.all_nodes())
        contexts = [doc.root] + rng.sample(all_nodes, min(5, len(all_nodes)))
        for axis in (Axis.FOLLOWING, Axis.PRECEDING):
            for nodetest in (NODE, ANY, TEXT, name_test("div"), name_test("li")):
                for predicates in (
                    (),
                    (PositionalPredicate(index=2),),
                    (PositionalPredicate(from_last=0),),
                    (AttributePredicate("class"), PositionalPredicate(index=1)),
                ):
                    query = Query((Step(axis, nodetest, predicates),))
                    for context in contexts:
                        reference = evaluate(query, context, doc)
                        compiled = evaluate_compiled(query, context, doc)
                        assert ids(compiled) == ids(reference)

    def test_evaluate_many_agrees(self):
        rng = random.Random(99)
        doc = random_doc(rng)
        contexts = list(doc.all_nodes())[:10]
        for _ in range(50):
            query = random_query(rng)
            reference = evaluate_many(query, contexts, doc)
            compiled = evaluate_many_compiled(query, contexts, doc)
            assert ids(compiled) == ids(reference)

    def test_equivalence_survives_mutation_and_invalidate(self):
        rng = random.Random(4242)
        doc = random_doc(rng)
        for round_ in range(10):
            elements = [
                n for n in doc.all_nodes()
                if isinstance(n, ElementNode) and not n.tag.startswith("#")
            ]
            victim = rng.choice(elements)
            if victim.parent is not None and rng.random() < 0.5:
                victim.parent.remove_child(victim)
            else:
                victim.append_child(E(rng.choice(TAGS), T("new"), class_="added"))
            doc.invalidate()
            for _ in range(20):
                query = random_query(rng)
                reference = evaluate(query, doc.root, doc)
                compiled = evaluate_compiled(query, doc.root, doc)
                assert ids(compiled) == ids(reference)

    def test_compiled_plans_are_memoized(self):
        rng = random.Random(5)
        query = random_query(rng)
        assert compile_query(query) is compile_query(query)


class TestAxisRewriteAgainstNaive:
    """The interval-arithmetic following/preceding axes vs a tree walk."""

    @staticmethod
    def naive_following(node: Node, doc: Document) -> list[Node]:
        all_nodes = list(doc.all_nodes())
        start = next(i for i, n in enumerate(all_nodes) if n is node)
        descendants = (
            {id(d) for d in node.descendants()} if isinstance(node, ElementNode) else set()
        )
        return [n for n in all_nodes[start + 1 :] if id(n) not in descendants]

    @staticmethod
    def naive_preceding(node: Node, doc: Document) -> list[Node]:
        all_nodes = list(doc.all_nodes())
        start = next(i for i, n in enumerate(all_nodes) if n is node)
        ancestors = {id(a) for a in node.ancestors()}
        return list(reversed([n for n in all_nodes[:start] if id(n) not in ancestors]))

    @pytest.mark.parametrize("seed", range(5))
    def test_following_preceding_match_naive(self, seed):
        rng = random.Random(31337 + seed)
        doc = random_doc(rng)
        for node in doc.all_nodes():
            assert ids(axis_candidates(node, Axis.FOLLOWING, doc)) == ids(
                self.naive_following(node, doc)
            )
            assert ids(axis_candidates(node, Axis.PRECEDING, doc)) == ids(
                self.naive_preceding(node, doc)
            )

    @pytest.mark.parametrize("seed", range(5))
    def test_descendant_matches_tree_walk(self, seed):
        rng = random.Random(99991 + seed)
        doc = random_doc(rng)
        for node in doc.all_nodes():
            if isinstance(node, ElementNode):
                assert ids(axis_candidates(node, Axis.DESCENDANT, doc)) == ids(
                    list(node.descendants())
                )

"""Regenerate the golden placement fixture (``tests/golden/placement.json``).

Placement (``site_key → shard_index``) is the one function the store,
the sweep fleet, the shard-owning serving hosts, and the router client
must all compute identically — a refactor that silently remaps shards
would orphan every stored artifact and misroute every request.  This
fixture freezes the SHA-1 assignment for all corpus sites at the
default shard count; ``tests/cluster/test_placement.py`` asserts the
live function reproduces it bit-for-bit.

Since replication the fixture also carries an ``epochs`` table: for
each reference topology (epoch 0: 8 shards / 3 hosts; epoch 1, the
post-``migrate`` shape: 16 shards / 3 hosts) it pins every site's
shard AND its replica set ``[primary, secondary]`` (host *indexes*
into the epoch's host list).  A silent change to replica derivation
would strand the secondary copy of every artifact exactly the way a
shard remap strands the primary.

Only regenerate after an *intentional*, migration-accompanied placement
change:

    PYTHONPATH=src python tests/golden/regenerate_placement.py
"""

from __future__ import annotations

import json
import pathlib
import sys

GOLDEN_PATH = pathlib.Path(__file__).parent / "placement.json"

# The reference topologies pinned per epoch: (n_shards, n_hosts).
# Epoch 1 is the documented ``migrate`` target shape — double the
# shards over the same host count.
EPOCH_TOPOLOGIES = {0: (8, 3), 1: (16, 3)}


def build_golden() -> dict:
    from repro.cluster.placement import (
        DEFAULT_SHARDS,
        REPLICATION_FACTOR,
        replica_indexes,
        shard_index,
    )
    from repro.sites.corpus import build_corpus

    site_ids = [spec.site_id for spec in build_corpus()]
    sites = {site_id: shard_index(site_id, DEFAULT_SHARDS) for site_id in site_ids}
    epochs = {}
    for epoch, (n_shards, n_hosts) in sorted(EPOCH_TOPOLOGIES.items()):
        placed = {}
        for site_id in site_ids:
            shard = shard_index(site_id, n_shards)
            placed[site_id] = {
                "shard": shard,
                "replicas": list(
                    replica_indexes(shard, n_hosts, REPLICATION_FACTOR)
                ),
            }
        epochs[str(epoch)] = {
            "n_shards": n_shards,
            "n_hosts": n_hosts,
            "sites": placed,
        }
    return {
        "description": (
            "Frozen SHA-1 site_key -> shard_index assignment for every "
            "corpus site at the default shard count, plus per-epoch "
            "replica placement (shard + [primary, secondary] host "
            "indexes) for the reference topologies.  Changing any entry "
            "orphans stored artifacts and requires an explicit store "
            "migration.  Regenerate with: PYTHONPATH=src python "
            "tests/golden/regenerate_placement.py"
        ),
        "n_shards": DEFAULT_SHARDS,
        "sites": sites,
        "replication": REPLICATION_FACTOR,
        "epochs": epochs,
    }


def main() -> int:
    payload = build_golden()
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(
        f"{len(payload['sites'])} site placements frozen to {GOLDEN_PATH} "
        f"({len(payload['epochs'])} epochs)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

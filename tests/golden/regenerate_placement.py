"""Regenerate the golden placement fixture (``tests/golden/placement.json``).

Placement (``site_key → shard_index``) is the one function the store,
the sweep fleet, the shard-owning serving hosts, and the router client
must all compute identically — a refactor that silently remaps shards
would orphan every stored artifact and misroute every request.  This
fixture freezes the SHA-1 assignment for all corpus sites at the
default shard count; ``tests/cluster/test_placement.py`` asserts the
live function reproduces it bit-for-bit.

Only regenerate after an *intentional*, migration-accompanied placement
change:

    PYTHONPATH=src python tests/golden/regenerate_placement.py
"""

from __future__ import annotations

import json
import pathlib
import sys

GOLDEN_PATH = pathlib.Path(__file__).parent / "placement.json"


def build_golden() -> dict:
    from repro.cluster.placement import DEFAULT_SHARDS, shard_index
    from repro.sites.corpus import build_corpus

    sites = {
        spec.site_id: shard_index(spec.site_id, DEFAULT_SHARDS)
        for spec in build_corpus()
    }
    return {
        "description": (
            "Frozen SHA-1 site_key -> shard_index assignment for every "
            "corpus site at the default shard count.  Changing any entry "
            "orphans stored artifacts and requires an explicit store "
            "migration.  Regenerate with: PYTHONPATH=src python "
            "tests/golden/regenerate_placement.py"
        ),
        "n_shards": DEFAULT_SHARDS,
        "sites": sites,
    }


def main() -> int:
    payload = build_golden()
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"{len(payload['sites'])} site placements frozen to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

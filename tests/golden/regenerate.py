"""Regenerate the golden induction corpus (``tests/golden/induction.json``).

Run after any *intentional* change to induction ranking or scoring:

    PYTHONPATH=src python tests/golden/regenerate.py

then review the diff — every changed line is a behavior change the PR
must justify.  The file freezes, for every single-node corpus task, the
canonical text, robustness score, and accuracy counts of the best
induced query at snapshot 0; ``tests/integration/test_golden_corpus.py``
asserts induction reproduces them bit-for-bit.
"""

from __future__ import annotations

import json
import pathlib
import sys

GOLDEN_PATH = pathlib.Path(__file__).parent / "induction.json"


def _freeze_tasks(corpus_tasks) -> dict[str, dict]:
    from repro.runtime.corpus import induce_corpus_task

    entries: dict[str, dict] = {}
    for corpus_task in corpus_tasks:
        induced = induce_corpus_task(corpus_task)
        if induced is None:
            raise SystemExit(f"{corpus_task.task_id}: no targets at snapshot 0")
        best = induced[0].best
        if best is None:
            raise SystemExit(f"{corpus_task.task_id}: induction produced no wrapper")
        entries[corpus_task.task_id] = {
            "query": str(best.query),
            "score": best.score,
            "tp": best.tp,
            "fp": best.fp,
            "fn": best.fn,
        }
    return entries


def build_golden() -> dict:
    from repro.sitegen.golden import golden_sitegen_tasks
    from repro.sites import single_node_tasks

    return {
        "description": (
            "Frozen best induced query per single-node corpus task "
            "(snapshot 0, WrapperInducer(k=10), default scoring params). "
            "'sitegen_tasks' additionally freezes the pinned generated-"
            "family members from repro.sitegen.golden. "
            "Regenerate with: PYTHONPATH=src python tests/golden/regenerate.py"
        ),
        "inducer": {"k": 10, "beta": 0.5},
        "tasks": _freeze_tasks(single_node_tasks()),
        "sitegen_tasks": _freeze_tasks(golden_sitegen_tasks()),
    }


def main() -> int:
    payload = build_golden()
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(
        f"{len(payload['tasks'])} tasks + {len(payload['sitegen_tasks'])} "
        f"sitegen tasks frozen to {GOLDEN_PATH}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""FamilySpec compilation: every declarative axis lands on the page."""

import pytest

from repro.dom.serialize import to_html
from repro.sitegen import FamilySpec, default_roster, generate_family
from repro.sitegen.breaks import BreakPoint, BreakScript
from repro.sitegen.family import PAGER_ROLE, _main_list
from repro.sitegen.locale import LABELS


def family_spec(**overrides):
    defaults = dict(family_id="t-movies", vertical="movies", n_sites=2)
    defaults.update(overrides)
    return FamilySpec(**defaults)


def first_page(spec, member=0, snapshot=0):
    family = generate_family(spec)
    return family.archive(member, n_snapshots=max(snapshot + 1, 2)).snapshot(snapshot)


class TestSpecValidation:
    def test_unknown_vertical_rejected(self):
        with pytest.raises(ValueError, match="vertical"):
            family_spec(vertical="nope")

    @pytest.mark.parametrize(
        "field,value",
        [
            ("layout", "mobile"),
            ("reskin_axis", "fonts"),
            ("list_shape", "spiral"),
            ("locale", "xx"),
            ("noise", 1.5),
            ("page_size", 1),
            ("n_sites", 0),
            ("change_scale", -1.0),
        ],
    )
    def test_bad_axis_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            family_spec(**{field: value})

    def test_break_target_must_exist_on_vertical(self):
        bad = BreakScript(points=(BreakPoint(3, "class_rename", "no-such-token"),))
        with pytest.raises(ValueError, match="class token"):
            generate_family(family_spec(breaks=(bad,)))

    def test_wrap_div_target_must_be_a_role(self):
        bad = BreakScript(points=(BreakPoint(3, "wrap_div", "no-such-role"),))
        with pytest.raises(ValueError, match="task role"):
            generate_family(family_spec(breaks=(bad,)))

    def test_payload_round_trip(self):
        spec = family_spec(
            layout="split",
            list_shape="paginated",
            locale="de",
            noise=0.5,
            breaks=(BreakScript(points=(BreakPoint(4, "section_reorder"),)),),
        )
        assert FamilySpec.from_payload(spec.to_payload()) == spec


class TestCompilation:
    def test_member_sites_get_family_ids_and_urls(self):
        family = generate_family(family_spec(n_sites=3))
        assert [site.site_id for site in family.sites] == [
            "t-movies-0",
            "t-movies-1",
            "t-movies-2",
        ]
        for site in family.sites:
            assert site.url == f"http://{site.site_id}.example.net/"
            for task in site.tasks:
                assert task.site_id == site.site_id
                assert task.task_id == f"{site.site_id}/{task.role}"

    def test_members_differ_but_share_the_template(self):
        family = generate_family(family_spec())
        pages = [
            to_html(family.archive(m, n_snapshots=2).snapshot(0)) for m in range(2)
        ]
        assert pages[0] != pages[1]  # different seeds + reskin
        roles = [sorted(t.role for t in site.tasks) for site in family.sites]
        assert roles[0] == roles[1]

    def test_reskin_suffixes_member_classes(self):
        html = to_html(first_page(family_spec(reskin_axis="classes"), member=1))
        assert "-r1" in html
        base = to_html(first_page(family_spec(reskin_axis="classes"), member=0))
        assert "-r0" not in base  # member 0 is the as-built A variant

    def test_boxed_layout_wraps_body(self):
        html = to_html(first_page(family_spec(layout="boxed")))
        assert "layout-boxed" in html

    def test_split_layout_makes_two_columns(self):
        html = to_html(first_page(family_spec(layout="split")))
        assert "col-main" in html and "col-side" in html

    def test_paginated_shape_truncates_and_adds_pager_task(self):
        spec = family_spec(list_shape="paginated", page_size=3)
        family = generate_family(spec)
        doc = family.archive(0, n_snapshots=2).snapshot(0)
        html = to_html(doc)
        assert "pager-next" in html
        assert any(t.role == PAGER_ROLE for t in family.sites[0].tasks)
        body = doc.find(tag="body")
        assert _main_list(body, 3) is None  # nothing longer than a page remains

    def test_chunked_shape_segments_the_main_list(self):
        html = to_html(first_page(family_spec(list_shape="chunked", page_size=3)))
        assert "stream-chunk" in html

    def test_locale_translates_labels_not_data(self):
        spec = family_spec(vertical="movies", locale="de")
        html = to_html(first_page(spec))
        assert LABELS["de"]["Director:"] in html
        assert "Director:" not in html

    def test_noise_adds_boiler_blocks(self):
        clean = to_html(first_page(family_spec(noise=0.0)))
        noisy = to_html(first_page(family_spec(noise=1.0)))
        assert "boiler-" not in clean
        assert "boiler-" in noisy

    def test_noise_positions_stable_across_snapshots(self):
        family = generate_family(family_spec(noise=0.7))
        archive = family.archive(0, n_snapshots=3)

        def skeleton(doc):
            body = doc.find(tag="body")
            return [
                (i, node.attrs.get("class"))
                for i, node in enumerate(body.element_children())
                if str(node.attrs.get("class", "")).startswith("boiler-")
            ]

        assert skeleton(archive.snapshot(0)) == skeleton(archive.snapshot(2))

    def test_calm_family_only_changes_data(self):
        family = generate_family(family_spec())
        archive = family.archive(0, n_snapshots=4)
        for index in range(4):
            doc = archive.snapshot(index)
            for task in family.sites[0].tasks:
                assert archive.targets(doc, task.role), (index, task.role)


class TestDefaultRoster:
    def test_roster_cycles_axes_and_compiles(self):
        specs = default_roster(8, snapshots=10)
        assert len(specs) == 8
        assert len({s.vertical for s in specs}) == 8
        assert {p.verb for s in specs for b in s.breaks for p in b.points} == {
            "class_rename",
            "wrap_div",
            "label_relocate",
            "section_reorder",
        }
        for spec in specs:
            generate_family(spec)  # every roster entry must validate

    def test_roster_breaks_land_mid_archive(self):
        for spec in default_roster(4, snapshots=10):
            for script in spec.breaks:
                assert all(p.at_snapshot == 5 for p in script.points)

    def test_roster_is_deterministic(self):
        assert default_roster(4, snapshots=20) == default_roster(4, snapshots=20)

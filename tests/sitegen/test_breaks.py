"""BreakScript semantics: known change, known snapshot, guaranteed shift."""

import pytest

from repro.dom.serialize import to_html
from repro.sitegen import BreakPoint, BreakScript, FamilySpec, generate_family
from repro.xpath import canonical_path


def family_with(script, **overrides):
    defaults = dict(
        family_id="t-brk", vertical="movies", n_sites=1, breaks=(script,)
    )
    defaults.update(overrides)
    return generate_family(FamilySpec(**defaults))


def one_break(verb, target, at=3):
    return BreakScript(points=(BreakPoint(at, verb, target),))


class TestBreakPointValidation:
    def test_unknown_verb_rejected(self):
        with pytest.raises(ValueError, match="verb"):
            BreakPoint(3, "explode", "x")

    def test_snapshot_zero_rejected(self):
        with pytest.raises(ValueError, match="snapshot 1"):
            BreakPoint(0, "wrap_div", "cast")

    def test_targeted_verbs_need_a_target(self):
        with pytest.raises(ValueError, match="target"):
            BreakPoint(3, "class_rename", "")

    def test_section_reorder_takes_no_target(self):
        with pytest.raises(ValueError, match="no target"):
            BreakPoint(3, "section_reorder", "cast")

    def test_script_sorts_points_and_round_trips(self):
        script = BreakScript(
            points=(
                BreakPoint(7, "section_reorder"),
                BreakPoint(3, "wrap_div", "cast"),
            )
        )
        assert [p.at_snapshot for p in script.points] == [3, 7]
        assert BreakScript.from_payload(script.to_payload()) == script

    def test_active_is_persistent(self):
        script = one_break("wrap_div", "cast", at=3)
        assert script.active(2) == ()
        assert len(script.active(3)) == 1
        assert len(script.active(9)) == 1  # migrations do not revert


class TestScriptedBreaks:
    def test_page_is_untouched_before_the_break(self):
        broken = family_with(one_break("wrap_div", "cast", at=3))
        calm = generate_family(
            FamilySpec(family_id="t-brk", vertical="movies", n_sites=1)
        )
        a = broken.archive(0, n_snapshots=5)
        b = calm.archive(0, n_snapshots=5)
        for index in range(3):
            assert to_html(a.snapshot(index)) == to_html(b.snapshot(index)), index

    def test_migration_shell_appears_exactly_at_break(self):
        archive = family_with(one_break("wrap_div", "cast", at=3)).archive(
            0, n_snapshots=6
        )
        assert "migration-shell-3" not in to_html(archive.snapshot(2))
        for index in (3, 4, 5):
            assert "migration-shell-3" in to_html(archive.snapshot(index))

    def test_wrap_div_wraps_every_target(self):
        family = family_with(one_break("wrap_div", "cast", at=3))
        archive = family.archive(0, n_snapshots=4)
        doc = archive.snapshot(3)
        assert "brk-wrap-3" in to_html(doc)
        for node in archive.targets(doc, "cast"):
            assert node.parent.attrs.get("class") == "brk-wrap-3"

    def test_label_relocate_moves_targets(self):
        family = family_with(one_break("label_relocate", "director", at=3))
        archive = family.archive(0, n_snapshots=4)
        doc = archive.snapshot(3)
        targets = archive.targets(doc, "director")
        assert targets
        for node in targets:
            assert node.parent.attrs.get("class") == "brk-moved-3"

    def test_section_reorder_moves_last_section_first(self):
        family = family_with(one_break("section_reorder", "", at=3))
        archive = family.archive(0, n_snapshots=4)
        before = archive.snapshot(2).find(tag="body").element_children()
        after_doc = archive.snapshot(3)
        shell = after_doc.find(tag="body").element_children()[0]
        inner = [c for c in shell.element_children()]
        assert str(inner[0].attrs.get("class", inner[0].tag)) == str(
            before[-1].attrs.get("class", before[-1].tag)
        )

    def test_class_rename_fires_at_break_and_persists(self):
        family = family_with(one_break("class_rename", "content", at=3))
        archive = family.archive(0, n_snapshots=6)
        before = archive.state(2).class_map["content"]
        renamed = archive.state(3).class_map["content"]
        assert renamed != before
        assert archive.state(5).class_map["content"] == renamed  # rename sticks

    def test_every_target_canonical_path_shifts_at_break(self):
        """The zero-false-healthy guarantee: any active break moves the
        canonical path of every body-descendant target."""
        for verb, target in [
            ("class_rename", "content"),
            ("wrap_div", "cast"),
            ("label_relocate", "director"),
            ("section_reorder", ""),
        ]:
            family = family_with(one_break(verb, target, at=3))
            archive = family.archive(0, n_snapshots=4)
            for task in family.sites[0].tasks:
                before = {
                    canonical_path(n)
                    for n in archive.targets(archive.snapshot(2), task.role)
                }
                after = {
                    canonical_path(n)
                    for n in archive.targets(archive.snapshot(3), task.role)
                }
                assert before.isdisjoint(after), (verb, task.role)

    def test_state_hook_consumes_no_walk_draws(self):
        """The scripted rename must not shift the organic trajectory:
        everything except the renamed token evolves identically."""
        broken = family_with(one_break("class_rename", "content", at=3))
        calm = generate_family(
            FamilySpec(family_id="t-brk", vertical="movies", n_sites=1)
        )
        a = broken.archive(0, n_snapshots=6).state(5)
        b = calm.archive(0, n_snapshots=6).state(5)
        assert a.class_map["content"] != b.class_map["content"]
        for key in a.class_map:
            if key != "content":
                assert a.class_map[key] == b.class_map[key], key
        assert a.lists == b.lists

"""The lead-time study harness and its CLI, at smoke scale."""

import json

import pytest

from repro.runtime.drift import DriftConfig
from repro.sitegen import (
    FamilySpec,
    StudyConfig,
    bench_payload,
    run_family_payload,
    run_family_study,
    write_bench,
)
from repro.sitegen.breaks import BreakPoint, BreakScript
from repro.sitegen.cli import main

N_SNAPSHOTS = 8
BREAK_AT = 4


@pytest.fixture(scope="module")
def study():
    spec = FamilySpec(
        family_id="st-movies",
        vertical="movies",
        n_sites=1,
        breaks=(BreakScript(points=(BreakPoint(BREAK_AT, "wrap_div", "cast"),)),),
    )
    return run_family_study(spec, StudyConfig(n_snapshots=N_SNAPSHOTS))


class TestFamilyStudy:
    def test_every_break_observed_per_task(self, study):
        assert len(study.observations) == study.n_tasks - len(study.skips)
        assert {o.break_at for o in study.observations} == {BREAK_AT}

    def test_no_false_healthy_at_break(self, study):
        """The acceptance property: the page verifiably changed at the
        break snapshot, so no verdict there may read healthy."""
        assert study.false_healthy == 0
        for o in study.observations:
            assert o.healthy_at_break is False
            assert o.signals_at_break

    def test_breaks_detected_with_zero_lead(self, study):
        assert study.all_detected
        for o in study.observations:
            assert o.signal_lead == 0
            assert o.detected

    def test_calm_prefix_has_no_false_alarms(self, study):
        for o in study.observations:
            assert o.false_alarms_before == 0

    def test_paranoid_default_repairs_at_the_break(self, study):
        assert study.repairs, "paranoid detector must trigger the repair arm"
        for repair in study.repairs:
            assert repair.snapshot == BREAK_AT
            assert repair.repair_ok
            assert repair.policy in ("ensemble_vote", "re_annotation")
            if repair.policy == "ensemble_vote":
                assert repair.annotation_cost == 0
            assert repair.manual_cost >= 1

    def test_soft_detector_lets_wrappers_survive(self):
        spec = FamilySpec(
            family_id="st-movies",
            vertical="movies",
            n_sites=1,
            breaks=(BreakScript(points=(BreakPoint(BREAK_AT, "wrap_div", "cast"),)),),
        )
        soft = run_family_study(
            spec,
            StudyConfig(
                n_snapshots=N_SNAPSHOTS,
                drift=DriftConfig(canonical_change_is_hard=False),
            ),
        )
        # Detection is detector-independent (the c-change signal still
        # fires) but under the serving default a robust wrapper absorbs
        # the structural change instead of triggering a repair.
        assert soft.false_healthy == 0
        assert soft.all_detected
        assert not soft.repairs

    def test_records_are_jsonl_ready(self, study):
        records = study.records()
        kinds = {r["type"] for r in records}
        assert "break" in kinds and "family_summary" in kinds
        for record in records:
            json.dumps(record)  # every record must serialize as-is
        summary = records[-1]
        assert summary["type"] == "family_summary"
        assert summary["breaks_detected"] == summary["breaks"]
        assert summary["false_healthy_at_break"] == 0

    def test_payload_entry_point_matches_in_process(self, study):
        spec = FamilySpec(
            family_id="st-movies",
            vertical="movies",
            n_sites=1,
            breaks=(BreakScript(points=(BreakPoint(BREAK_AT, "wrap_div", "cast"),)),),
        )
        result = run_family_payload(spec.to_payload(), N_SNAPSHOTS)
        assert result["family_id"] == "st-movies"
        assert result["records"] == study.records()


class TestCli:
    def test_sweep_exits_zero_and_writes_outputs(self, tmp_path, capsys):
        out = tmp_path / "study.jsonl"
        bench = tmp_path / "BENCH_sitegen.json"
        code = main(
            [
                "sweep",
                "--families",
                "2",
                "--snapshots",
                str(N_SNAPSHOTS),
                "--out",
                str(out),
                "--bench",
                str(bench),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "false_healthy_at_break: 0" in stdout
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert any(r["type"] == "break" for r in records)
        assert any(r["type"] == "family_summary" for r in records)
        payload = json.loads(bench.read_text())
        assert payload["throughput"]["pages_per_sec_vs_floor"] > 0

    def test_sweep_no_bench_skips_the_measurement(self, tmp_path):
        out = tmp_path / "study.jsonl"
        code = main(
            [
                "sweep",
                "--families",
                "1",
                "--snapshots",
                str(N_SNAPSHOTS),
                "--out",
                str(out),
                "--no-bench",
            ]
        )
        assert code == 0
        assert out.exists()

    def test_roster_prints_valid_payloads(self, capsys):
        assert main(["roster", "--families", "3"]) == 0
        payloads = json.loads(capsys.readouterr().out)
        assert len(payloads) == 3
        for payload in payloads:
            FamilySpec.from_payload(payload)

    def test_roster_file_round_trips_through_sweep(self, tmp_path, capsys):
        assert main(["roster", "--families", "1", "--snapshots", "6"]) == 0
        roster = tmp_path / "roster.json"
        roster.write_text(capsys.readouterr().out)
        code = main(
            [
                "sweep",
                "--roster",
                str(roster),
                "--snapshots",
                "6",
                "--out",
                str(tmp_path / "s.jsonl"),
                "--no-bench",
            ]
        )
        assert code == 0

    def test_generate_writes_pages(self, tmp_path):
        out = tmp_path / "fleet"
        code = main(
            [
                "generate",
                "--families",
                "1",
                "--snapshots",
                "2",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        pages = list(out.rglob("snapshot-*.html"))
        assert len(pages) == 4  # 1 family x 2 sites x 2 snapshots
        assert pages[0].read_text().startswith("<")


class TestBenchPayload:
    def test_payload_shape_and_gate(self, tmp_path):
        specs = [FamilySpec(family_id="b-movies", vertical="movies", n_sites=1)]
        payload = bench_payload(specs, n_snapshots=2, workers=1)
        assert payload["current"]["serial"]["pages"] == 2
        assert payload["current"]["parallel"]["pages"] == 2
        assert set(payload["throughput"]) == {
            "pages_per_sec_vs_floor",
            "parallel_gen_vs_serial",
        }
        gate = payload["gate_applies"]["throughput.parallel_gen_vs_serial"]
        assert gate == (payload["current"]["cpus"] >= 2)
        target = tmp_path / "BENCH_sitegen.json"
        write_bench(target, payload)
        assert json.loads(target.read_text()) == payload

"""Fleet determinism: a FamilySpec payload is the whole recipe.

Same spec + same seed must render byte-identical HTML — in the same
process, across archive instances, and across *separate interpreter
processes* (the process-pool sweep path hands workers nothing but the
payload dict, so any hidden per-process state would silently fork the
fleet).
"""

import json
import os
import random
import subprocess
import sys

import repro
from repro.dom.serialize import to_html
from repro.sitegen import FamilySpec, default_roster, generate_family

N_SNAPSHOTS = 5

SPEC = FamilySpec(
    family_id="det-news",
    vertical="news",
    n_sites=2,
    layout="boxed",
    reskin_axis="both",
    list_shape="paginated",
    locale="fr",
    noise=0.7,
    breaks=default_roster(2, snapshots=N_SNAPSHOTS)[1].breaks,
    seed=42,
)

_RENDER_SCRIPT = """\
import json, sys
from repro.dom.serialize import to_html
from repro.sitegen import FamilySpec, generate_family

payload, n_snapshots = json.loads(sys.stdin.read())
family = generate_family(FamilySpec.from_payload(payload))
pages = []
for member in range(len(family.sites)):
    archive = family.archive(member, n_snapshots=n_snapshots, cache_size=1)
    pages.extend(to_html(archive.snapshot(i)) for i in range(n_snapshots))
json.dump(pages, sys.stdout)
"""


def render_in_process(spec):
    family = generate_family(spec)
    pages = []
    for member in range(len(family.sites)):
        archive = family.archive(member, n_snapshots=N_SNAPSHOTS)
        pages.extend(to_html(archive.snapshot(i)) for i in range(N_SNAPSHOTS))
    return pages


def render_in_subprocess(spec):
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _RENDER_SCRIPT],
        input=json.dumps([spec.to_payload(), N_SNAPSHOTS]),
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    return json.loads(out.stdout)


def test_same_spec_renders_identically_in_process():
    assert render_in_process(SPEC) == render_in_process(SPEC)


def test_payload_round_trip_renders_identically():
    rebuilt = FamilySpec.from_payload(json.loads(json.dumps(SPEC.to_payload())))
    assert render_in_process(rebuilt) == render_in_process(SPEC)


def test_subprocess_renders_byte_identical_html():
    """The determinism satellite: a fresh interpreter, given only the
    JSON payload, reproduces every page byte for byte."""
    assert render_in_subprocess(SPEC) == render_in_process(SPEC)


def test_global_rng_state_is_irrelevant():
    random.seed(1)
    a = render_in_process(SPEC)
    random.seed(987654)
    random.random()
    b = render_in_process(SPEC)
    assert a == b


def test_seed_changes_the_family():
    import dataclasses

    other = dataclasses.replace(SPEC, seed=SPEC.seed + 1)
    assert render_in_process(other) != render_in_process(SPEC)

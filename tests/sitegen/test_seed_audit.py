"""Seed-threading audit: no generator module may touch the global RNG.

Determinism rests on one rule — every random draw derives from
``seeded_rng`` (or an explicitly-seeded ``random.Random``), never from
the process-global ``random`` module.  A single ``random.choice(...)``
at module scope or inside a builder silently couples output to import
order and test order.  This audit walks the AST of every module in the
generator stack (``repro.sites``, ``repro.evolution``,
``repro.sitegen``) and fails on any call of the form
``random.<fn>(...)`` — the global-RNG convenience API — while allowing
``random.Random(seed)`` construction and type annotations.
"""

import ast
import pathlib

import pytest

import repro

SRC_ROOT = pathlib.Path(repro.__file__).resolve().parent

#: Packages whose modules draw randomness while generating content.
AUDITED_PACKAGES = ("sites", "evolution", "sitegen")

#: The one constructor allowed on the module: explicit-seed generators.
ALLOWED_ATTRS = {"Random"}


def audited_files():
    for package in AUDITED_PACKAGES:
        for path in sorted((SRC_ROOT / package).rglob("*.py")):
            yield pytest.param(path, id=str(path.relative_to(SRC_ROOT)))


def global_rng_calls(tree: ast.AST) -> list[str]:
    """Every ``random.<fn>(...)`` call in a module, as ``line: code``."""
    offenders = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and func.attr not in ALLOWED_ATTRS
        ):
            offenders.append(f"line {node.lineno}: random.{func.attr}(...)")
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and func.attr == "Random"
            and not node.args
            and not node.keywords
        ):
            offenders.append(f"line {node.lineno}: random.Random() without a seed")
    return offenders


@pytest.mark.parametrize("path", list(audited_files()))
def test_no_global_rng_draws(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    offenders = global_rng_calls(tree)
    assert not offenders, (
        f"{path} draws from the process-global RNG (derive from seeded_rng "
        f"or an explicitly seeded random.Random instead):\n  "
        + "\n  ".join(offenders)
    )


def test_audit_catches_a_global_draw():
    """The audit itself must not be vacuous."""
    tree = ast.parse("import random\nx = random.choice([1, 2])\n")
    assert global_rng_calls(tree)
    tree = ast.parse("import random\nrng = random.Random()\n")
    assert global_rng_calls(tree)
    tree = ast.parse("import random\nrng = random.Random(42)\nrng.choice([1])\n")
    assert not global_rng_calls(tree)
